/**
 * @file
 * Tests for the parallel study engine: cycle-identity with the serial
 * path, single-flight baseline dedup, exception isolation, ordered
 * aggregation, and the SeqBaselineCache itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <thread>

#include "apps/registry.hh"
#include "core/metrics.hh"
#include "core/study_runner.hh"

using namespace ccnuma;

namespace {

void
expectSameStats(const sim::RunResult& a, const sim::RunResult& b)
{
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.procs.size(), b.procs.size());
    ASSERT_EQ(a.pageMigrations, b.pageMigrations);
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
        const sim::ProcStats& x = a.procs[p];
        const sim::ProcStats& y = b.procs[p];
        EXPECT_EQ(x.t.busy, y.t.busy) << p;
        EXPECT_EQ(x.t.memStall, y.t.memStall) << p;
        EXPECT_EQ(x.t.syncWait, y.t.syncWait) << p;
        EXPECT_EQ(x.t.syncOp, y.t.syncOp) << p;
        EXPECT_EQ(x.c.loads, y.c.loads) << p;
        EXPECT_EQ(x.c.stores, y.c.stores) << p;
        EXPECT_EQ(x.c.l2Hits, y.c.l2Hits) << p;
        EXPECT_EQ(x.c.missLocal, y.c.missLocal) << p;
        EXPECT_EQ(x.c.missRemoteClean, y.c.missRemoteClean) << p;
        EXPECT_EQ(x.c.missRemoteDirty, y.c.missRemoteDirty) << p;
        EXPECT_EQ(x.c.upgrades, y.c.upgrades) << p;
        EXPECT_EQ(x.c.invalsSent, y.c.invalsSent) << p;
        EXPECT_EQ(x.c.writebacks, y.c.writebacks) << p;
        EXPECT_EQ(x.c.lockAcquires, y.c.lockAcquires) << p;
        EXPECT_EQ(x.c.barriersPassed, y.c.barriersPassed) << p;
    }
}

/// A small mixed grid: two apps x two machine sizes, shared baselines.
core::StudyPlan
smallGrid()
{
    core::StudyPlan plan;
    for (const char* name : {"fft", "ocean"}) {
        for (const int P : {2, 4}) {
            const std::uint64_t size = name[0] == 'f' ? 1 << 12 : 66;
            plan.add(std::string(name) + " P=" + std::to_string(P),
                     sim::MachineConfig::origin2000(P),
                     [name, size] { return apps::makeApp(name, size); },
                     name);
        }
    }
    return plan;
}

} // namespace

TEST(StudyRunner, CycleIdenticalToSerialMeasure)
{
    const core::StudyPlan plan = smallGrid();

    // Serial reference: plain measure() calls, fresh cache.
    std::vector<core::Measurement> serial;
    core::SeqBaselineCache serial_cache;
    for (const core::RunSpec& s : plan.specs())
        serial.push_back(core::measure(s.cfg, s.factory, &serial_cache,
                                       s.seqKey));

    core::StudyRunner runner({.jobs = 4});
    const core::StudyResult res = runner.run(plan);
    ASSERT_EQ(res.runs.size(), plan.size());
    EXPECT_EQ(res.failures(), 0u);
    EXPECT_EQ(res.jobs, 4);

    for (std::size_t i = 0; i < plan.size(); ++i) {
        SCOPED_TRACE(res.runs[i].name);
        ASSERT_TRUE(res.runs[i].ok) << res.runs[i].error;
        EXPECT_EQ(res.runs[i].name, plan.specs()[i].name)
            << "submission-ordered aggregation";
        EXPECT_EQ(res.runs[i].m.seqTime, serial[i].seqTime);
        EXPECT_EQ(res.runs[i].m.parTime, serial[i].parTime);
        EXPECT_EQ(res.runs[i].m.nprocs, serial[i].nprocs);
        expectSameStats(res.runs[i].m.par, serial[i].par);
    }
}

TEST(StudyRunner, SimJobsDividesTheThreadBudget)
{
    const core::StudyPlan plan = smallGrid(); // 4 cells

    // jobs stays the *total* host-thread budget; each run weighs
    // simJobs threads, so the pool shrinks accordingly.
    core::StudyRunner half({.jobs = 8, .simJobs = 2});
    EXPECT_EQ(half.run(plan).jobs, 4);

    core::StudyRunner whole({.jobs = 4, .simJobs = 4});
    EXPECT_EQ(whole.run(plan).jobs, 1);

    // Budget smaller than one run's weight still makes progress.
    core::StudyRunner tight({.jobs = 1, .simJobs = 4});
    EXPECT_EQ(tight.run(plan).jobs, 1);

    // simJobs=0 (auto: each run wants the whole host) with jobs=0
    // (auto budget: the whole host) collapses to one worker on any
    // machine.
    core::StudyRunner autos({.jobs = 0, .simJobs = 0});
    EXPECT_EQ(autos.run(plan).jobs, 1);
}

TEST(StudyRunner, WorkerPoolStillClampedToWorkItems)
{
    const core::StudyPlan plan = smallGrid(); // 4 cells
    core::StudyRunner wide({.jobs = 64, .simJobs = 2});
    const core::StudyResult res = wide.run(plan);
    EXPECT_EQ(res.jobs, 4) << "never more workers than cells";
    EXPECT_EQ(res.failures(), 0u);
}

TEST(StudyRunner, SimJobsResultsMatchSerialEngine)
{
    // The same grid with every cell on the parallel scout/replay
    // engine must produce byte-identical simulated results.
    core::StudyPlan serial_plan = smallGrid();
    core::StudyPlan par_plan;
    for (const core::RunSpec& s : serial_plan.specs()) {
        core::RunSpec p = s;
        p.cfg.simJobs = 2;
        par_plan.add(std::move(p));
    }

    core::StudyRunner serial_runner({.jobs = 1});
    core::StudyRunner par_runner({.jobs = 4, .simJobs = 2});
    const core::StudyResult a = serial_runner.run(serial_plan);
    const core::StudyResult b = par_runner.run(par_plan);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        SCOPED_TRACE(a.runs[i].name);
        ASSERT_TRUE(a.runs[i].ok && b.runs[i].ok);
        EXPECT_EQ(a.runs[i].m.seqTime, b.runs[i].m.seqTime);
        EXPECT_EQ(a.runs[i].m.parTime, b.runs[i].m.parTime);
        expectSameStats(a.runs[i].m.par, b.runs[i].m.par);
    }
}

TEST(StudyRunner, SingleFlightBaselineDedup)
{
    // Four specs share one seq_key: the uniprocessor baseline must be
    // simulated exactly once even with four concurrent workers, so the
    // factory runs 4 (parallel) + 1 (baseline) times.
    std::atomic<int> factories{0};
    core::StudyPlan plan;
    for (const int P : {2, 2, 4, 4})
        plan.add("fft P=" + std::to_string(P),
                 sim::MachineConfig::origin2000(P),
                 [&factories] {
                     factories.fetch_add(1);
                     return apps::makeApp("fft", 1 << 12);
                 },
                 "shared");

    core::StudyRunner runner({.jobs = 4});
    const core::StudyResult res = runner.run(plan);
    EXPECT_EQ(res.failures(), 0u);
    EXPECT_EQ(factories.load(), 5)
        << "baseline deduplicated in flight";
    EXPECT_EQ(runner.baselineCache().size(), 1u);
    EXPECT_EQ(runner.baselineCache().hits(), 3u);
    // All four cells report the identical shared baseline.
    for (const core::RunOutcome& r : res.runs)
        EXPECT_EQ(r.m.seqTime, res.runs[0].m.seqTime);
}

TEST(StudyRunner, ExceptionIsolation)
{
    core::StudyPlan plan;
    plan.add("good-before", sim::MachineConfig::origin2000(2),
             [] { return apps::makeApp("fft", 1 << 10); }, "fft");
    plan.add("bad", sim::MachineConfig::origin2000(2),
             []() -> apps::AppPtr {
                 throw std::runtime_error("boom: bad config cell");
             });
    // An unknown app name fails through makeApp's own throw.
    plan.add("bad-name", sim::MachineConfig::origin2000(2),
             [] { return apps::makeApp("no-such-app"); });
    plan.add("good-after", sim::MachineConfig::origin2000(4),
             [] { return apps::makeApp("fft", 1 << 10); }, "fft");

    core::StudyRunner runner({.jobs = 2});
    const core::StudyResult res = runner.run(plan);
    ASSERT_EQ(res.runs.size(), 4u);
    EXPECT_EQ(res.failures(), 2u);
    EXPECT_TRUE(res.runs[0].ok);
    EXPECT_FALSE(res.runs[1].ok);
    EXPECT_NE(res.runs[1].error.find("boom"), std::string::npos);
    EXPECT_FALSE(res.runs[2].ok);
    EXPECT_NE(res.runs[2].error.find("no-such-app"),
              std::string::npos);
    EXPECT_TRUE(res.runs[3].ok);
    // The failing cells didn't poison the shared baseline.
    EXPECT_EQ(res.runs[0].m.seqTime, res.runs[3].m.seqTime);
    EXPECT_NE(res.find("good-after"), nullptr);
    EXPECT_EQ(res.find("nope"), nullptr);
}

TEST(StudyRunner, ParallelOnlySkipsBaseline)
{
    core::StudyPlan plan;
    plan.addParallelOnly("fft", sim::MachineConfig::origin2000(4),
                         [] { return apps::makeApp("fft", 1 << 12); });
    core::StudyRunner runner;
    const core::StudyResult res = runner.run(plan);
    ASSERT_EQ(res.failures(), 0u);
    EXPECT_EQ(res.runs[0].m.seqTime, 0u);
    EXPECT_GT(res.runs[0].m.parTime, 0u);
    EXPECT_EQ(runner.baselineCache().size(), 0u);
}

TEST(StudyRunner, EmitsFullGridToMetricsSink)
{
    core::StudyRunner runner({.jobs = 2});
    const core::StudyResult res = runner.run(smallGrid());
    const std::string path =
        ::testing::TempDir() + "/study_grid.json";
    core::MetricsSink sink(path);
    res.emit(sink);
    ASSERT_TRUE(sink.write());
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    const std::string doc((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
    EXPECT_NE(doc.find("\"fft P=2\""), std::string::npos);
    EXPECT_NE(doc.find("\"speedup\""), std::string::npos);
    EXPECT_NE(doc.find("\"_study\""), std::string::npos);
    EXPECT_NE(doc.find("\"wallSeconds\""), std::string::npos);
}

TEST(SeqBaselineCache, SingleFlightUnderContention)
{
    core::SeqBaselineCache cache;
    std::atomic<int> computes{0};
    const auto slow_compute = [&]() -> sim::Cycles {
        computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return 42;
    };
    std::vector<std::thread> threads;
    std::vector<sim::Cycles> got(8, 0);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            got[t] = cache.getOrCompute("key", slow_compute);
        });
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(computes.load(), 1) << "one leader, everyone else waits";
    for (const sim::Cycles v : got)
        EXPECT_EQ(v, 42u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits(), 7u);
}

TEST(SeqBaselineCache, FailedLeaderPromotesWaiter)
{
    core::SeqBaselineCache cache;
    std::atomic<int> attempts{0};
    std::vector<std::thread> threads;
    std::atomic<int> successes{0};
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&] {
            try {
                // First attempt throws; retries succeed.
                const sim::Cycles v =
                    cache.getOrCompute("key", [&]() -> sim::Cycles {
                        if (attempts.fetch_add(1) == 0) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(10));
                            throw std::runtime_error("flaky");
                        }
                        return 7;
                    });
                EXPECT_EQ(v, 7u);
                successes.fetch_add(1);
            } catch (const std::runtime_error&) {
                failures.fetch_add(1);
            }
        });
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 1)
        << "only the failing leader sees the exception";
    EXPECT_EQ(successes.load(), 3);
    EXPECT_EQ(cache.lookup("key"), 7u);
}

TEST(SeqBaselineCache, EmptyKeyBypassesCache)
{
    core::SeqBaselineCache cache;
    int computes = 0;
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(cache.getOrCompute("",
                                     [&]() -> sim::Cycles {
                                         ++computes;
                                         return 9;
                                     }),
                  9u);
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(SeqBaselineCache, InsertPreSeedsValues)
{
    core::SeqBaselineCache cache;
    cache.insert("warm", 123);
    EXPECT_EQ(cache.getOrCompute("warm",
                                 []() -> sim::Cycles {
                                     ADD_FAILURE()
                                         << "must not recompute";
                                     return 0;
                                 }),
              123u);
    EXPECT_EQ(cache.lookup("cold"), std::nullopt);
}

TEST(StudyRunnerSubmit, FutureDeliversSameResultAsRun)
{
    const core::StudyPlan plan = smallGrid();

    core::StudyRunner sync({.jobs = 2});
    const core::StudyResult want = sync.run(plan);

    core::StudyRunner runner({.jobs = 2});
    std::future<core::StudyResult> fut = runner.submit(plan);
    const core::StudyResult got = fut.get();
    ASSERT_EQ(got.runs.size(), want.runs.size());
    for (std::size_t i = 0; i < got.runs.size(); ++i) {
        SCOPED_TRACE(got.runs[i].name);
        ASSERT_TRUE(got.runs[i].ok) << got.runs[i].error;
        EXPECT_EQ(got.runs[i].name, want.runs[i].name);
        expectSameStats(got.runs[i].m.par, want.runs[i].m.par);
    }
}

TEST(StudyRunnerSubmit, ConcurrentSubmittersAllComplete)
{
    core::StudyRunner runner({.jobs = 2});
    constexpr int kSubmitters = 6;
    std::vector<std::future<core::StudyResult>> futs(kSubmitters);
    std::vector<std::thread> threads;
    threads.reserve(kSubmitters);
    for (int i = 0; i < kSubmitters; ++i)
        threads.emplace_back([&, i] {
            core::StudyPlan plan;
            plan.add("fft P=2", sim::MachineConfig::origin2000(2),
                     [] { return apps::makeApp("fft", 1 << 10); },
                     "fft-submit");
            futs[i] = runner.submit(std::move(plan));
        });
    for (auto& t : threads)
        t.join();

    sim::Cycles time = 0;
    for (int i = 0; i < kSubmitters; ++i) {
        const core::StudyResult res = futs[i].get();
        ASSERT_EQ(res.runs.size(), 1u);
        ASSERT_TRUE(res.runs[0].ok) << res.runs[0].error;
        if (i == 0)
            time = res.runs[0].m.parTime;
        else
            EXPECT_EQ(res.runs[0].m.parTime, time)
                << "identical plans, identical results";
    }
    // All six submissions shared one cached uniprocessor baseline.
    EXPECT_EQ(runner.baselineCache().size(), 1u);
}

TEST(StudyRunnerSubmit, DestructorDrainsPendingSubmissions)
{
    std::future<core::StudyResult> early;
    std::future<core::StudyResult> late;
    {
        core::StudyRunner runner({.jobs = 1});
        const auto mkPlan = [] {
            core::StudyPlan plan;
            plan.addParallelOnly(
                "fft", sim::MachineConfig::origin2000(2),
                [] { return apps::makeApp("fft", 1 << 10); });
            return plan;
        };
        early = runner.submit(mkPlan());
        late = runner.submit(mkPlan());
        // Destroy with work still (possibly) queued.
    }
    EXPECT_TRUE(early.get().runs[0].ok);
    EXPECT_TRUE(late.get().runs[0].ok);
}

TEST(StudyRunnerSubmit, PerRunFailuresStayIsolated)
{
    core::StudyRunner runner({.jobs = 1});
    core::StudyPlan plan;
    plan.addParallelOnly("boom", sim::MachineConfig::origin2000(2), [] {
        return apps::makeApp("no-such-app");
    });
    plan.addParallelOnly("fft", sim::MachineConfig::origin2000(2), [] {
        return apps::makeApp("fft", 1 << 10);
    });
    const core::StudyResult res = runner.submit(std::move(plan)).get();
    ASSERT_EQ(res.runs.size(), 2u);
    EXPECT_FALSE(res.runs[0].ok);
    EXPECT_NE(res.runs[0].error.find("no-such-app"), std::string::npos);
    EXPECT_TRUE(res.runs[1].ok) << res.runs[1].error;
}
