/**
 * @file
 * End-to-end checks for the non-default coherence protocols (MOESI,
 * Dragon) and compressed directory formats (coarse:K, ptr:N):
 *
 *  - every new protocol x format combination runs the all-apps SC
 *    oracle sweep, a 20-seed stress sweep and a race-free app sweep
 *    clean;
 *  - the check.legacyMesiPath seam replays the table-driven engine
 *    bit-identically for MESI + fullbv;
 *  - directed litmus programs pin the distinguishing behaviours:
 *    MOESI owner-forwarding keeps serving readers from the dirty copy,
 *    Dragon updates leave remote copies valid (no invalidations at
 *    all), coarse vectors over-invalidate within a marked region and
 *    Dir_iB broadcasts after pointer overflow — with the spurious
 *    traffic landing in invalsSpurious and the obs sharing profiler
 *    still counting only real invalidations;
 *  - a corrupted MOESI table cell (CheckMutation::CorruptMoesiTable)
 *    is caught by the oracle and shrinks to a <= 50-op witness.
 */

#include <gtest/gtest.h>

#include "analyze/sweep.hh"
#include "apps/registry.hh"
#include "check/golden.hh"
#include "check/oracle.hh"
#include "check/shrink.hh"
#include "check/stress.hh"
#include "obs/trace.hh"
#include "sim/machine.hh"

using namespace ccnuma;
using sim::ProtocolKind;

namespace {

sim::MachineConfig
comboConfig(const std::string& protocol, const std::string& dirFormat,
            int procs = 4)
{
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(procs);
    if (!cfg.protocol.parse(protocol))
        ADD_FAILURE() << "bad protocol " << protocol;
    if (!cfg.dirFormat.parse(dirFormat))
        ADD_FAILURE() << "bad dir format " << dirFormat;
    return cfg;
}

/// The non-default combinations exercised by the unit sweeps (the
/// full cross-product grid lives in `ccnuma_verify protocols`).
const std::vector<std::pair<std::string, std::string>> kNewCombos = {
    {"moesi", "fullbv"},  {"dragon", "fullbv"}, {"mesi", "coarse:2"},
    {"mesi", "ptr:1"},    {"moesi", "coarse:2"}, {"dragon", "ptr:1"},
};

} // namespace

class ProtocolComboSweep
    : public ::testing::TestWithParam<std::pair<std::string, std::string>>
{
};

TEST_P(ProtocolComboSweep, AllAppsRunCleanUnderTheOracle)
{
    const auto& [protocol, dirFormat] = GetParam();
    for (const std::string& name : apps::listApps()) {
        sim::MachineConfig cfg = comboConfig(protocol, dirFormat);
        cfg.cacheBytes = 256u << 10;
        cfg.check.validateEvery = 1024;

        sim::Machine m(cfg);
        const apps::AppPtr app =
            apps::makeApp(name, check::goldenSize(name));
        app->setup(m);

        check::ScOracle oracle(m.mem());
        m.mem().attachCommitObserver(&oracle);
        const sim::RunResult r = m.run(app->program());

        EXPECT_GT(r.time, 0u) << name;
        ASSERT_FALSE(oracle.failed())
            << protocol << "/" << dirFormat << " " << name << ": "
            << oracle.violations().front().what << " (commit "
            << oracle.violations().front().commit << ")";
        EXPECT_GT(oracle.loadsChecked(), 0u) << name;
        EXPECT_TRUE(m.mem().validateCoherence().empty()) << name;
    }
}

TEST_P(ProtocolComboSweep, TwentySeedStressRunsClean)
{
    const auto& [protocol, dirFormat] = GetParam();
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        check::StressOptions opt;
        opt.seed = seed;
        opt.procs = 8;
        opt.opsPerProc = 150;
        opt.validateEvery = 256;
        ASSERT_TRUE(opt.machine.protocol.parse(protocol));
        ASSERT_TRUE(opt.machine.dirFormat.parse(dirFormat));
        const check::StressReport rep = check::runStress(opt);
        if (rep.failed) {
            // A failing seed ships its ddmin-shrunk witness in the
            // failure message so the bug is actionable from CI logs.
            const check::ShrinkResult sh =
                check::shrink(check::generate(opt), opt);
            FAIL() << protocol << "/" << dirFormat << " seed " << seed
                   << ": " << rep.message << "\nshrunk witness ("
                   << sh.opsAfter << " ops):\n"
                   << check::formatWitness(sh.program);
        }
        EXPECT_GT(rep.commits, 0u);
    }
}

TEST_P(ProtocolComboSweep, AllAppsAreRaceFree)
{
    const auto& [protocol, dirFormat] = GetParam();
    const std::vector<analyze::AppRaceResult> results =
        analyze::analyzeAllApps(comboConfig(protocol, dirFormat));
    for (const analyze::AppRaceResult& r : results) {
        EXPECT_TRUE(r.races.empty())
            << protocol << "/" << dirFormat << " " << r.app << ": "
            << r.races.front().format();
        EXPECT_GT(r.stats.memOps, 0u) << r.app;
    }
}

INSTANTIATE_TEST_SUITE_P(NewCombos, ProtocolComboSweep,
                         ::testing::ValuesIn(kNewCombos),
                         [](const auto& info) {
                             std::string n = info.param.first + "_" +
                                             info.param.second;
                             for (auto& ch : n)
                                 if (ch == ':')
                                     ch = '_';
                             return n;
                         });

TEST(LegacyMesiSeam, StressReplaysBitIdenticallyThroughBothPaths)
{
    // The table-driven engine must be indistinguishable from the
    // historical hard-coded MESI path: full per-processor timing and
    // counter state (StressReport::stateHash) must match.
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
        check::StressOptions engine;
        engine.seed = seed;
        engine.procs = 8;
        engine.opsPerProc = 200;
        check::StressOptions legacy = engine;
        legacy.machine.check.legacyMesiPath = true;
        const check::StressReport a = check::runStress(engine);
        const check::StressReport b = check::runStress(legacy);
        EXPECT_FALSE(a.failed) << a.message;
        EXPECT_FALSE(b.failed) << b.message;
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

namespace {

/// One producer/consumer round per line: P0 writes, then (barrier)
/// P1 reads, then (barrier) P2 reads, then (barrier) P0 writes again,
/// then (barrier) P1 reads again.
sim::RunResult
runSharingLitmus(sim::MachineConfig cfg, int lines = 8,
                 sim::Addr* baseOut = nullptr)
{
    cfg.trace.sharing = true;
    sim::Machine m(cfg);
    const sim::Addr base = m.alloc(
        static_cast<std::uint64_t>(lines) * cfg.lineBytes);
    if (baseOut)
        *baseOut = base;
    const sim::BarrierId bar = m.barrierCreate();
    return m.run([&, lines](sim::Cpu& cpu) -> sim::Task {
        const auto addr = [&](int i) {
            return base + static_cast<sim::Addr>(i) * cfg.lineBytes;
        };
        const auto step = [&](int writer, bool write) -> void {
            if (cpu.id() == writer)
                for (int i = 0; i < lines; ++i)
                    write ? cpu.write(addr(i)) : cpu.read(addr(i));
        };
        step(0, true);
        co_await cpu.barrier(bar);
        step(1, false);
        co_await cpu.barrier(bar);
        step(2, false);
        co_await cpu.barrier(bar);
        step(0, true);
        co_await cpu.barrier(bar);
        step(1, false);
        co_return;
    });
}

} // namespace

TEST(ProtocolLitmus, MoesiOwnerKeepsForwardingWithoutWriteback)
{
    const int lines = 8;
    const sim::RunResult mesi =
        runSharingLitmus(comboConfig("mesi", "fullbv"), lines);
    const sim::RunResult moesi =
        runSharingLitmus(comboConfig("moesi", "fullbv"), lines);

    // MESI: P1's read downgrades the dirty line with a memory
    // writeback, so P2's read is a *clean* remote miss. MOESI: the
    // owner keeps the only up-to-date copy and serves P2 too.
    EXPECT_EQ(mesi.totals().missRemoteDirty,
              static_cast<std::uint64_t>(2 * lines));
    EXPECT_EQ(mesi.totals().missRemoteClean,
              static_cast<std::uint64_t>(lines));
    EXPECT_EQ(moesi.totals().missRemoteDirty,
              static_cast<std::uint64_t>(3 * lines));
    EXPECT_EQ(moesi.totals().missRemoteClean, 0u);
    // Both are invalidation protocols: P0's second write kills the
    // reader copies either way.
    EXPECT_GT(moesi.totals().invalsSent, 0u);
    EXPECT_EQ(moesi.totals().updatesSent, 0u);
}

TEST(ProtocolLitmus, DragonUpdatesInsteadOfInvalidating)
{
    const int lines = 8;
    const sim::RunResult mesi =
        runSharingLitmus(comboConfig("mesi", "fullbv"), lines);
    const sim::RunResult dragon =
        runSharingLitmus(comboConfig("dragon", "fullbv"), lines);

    // Dragon never invalidates: P0's second write pushes updates into
    // P1/P2's copies, and P1's final re-read hits in its own cache.
    EXPECT_EQ(dragon.totals().invalsSent, 0u);
    EXPECT_EQ(dragon.totals().invalsReceived, 0u);
    EXPECT_EQ(dragon.totals().updatesSent,
              static_cast<std::uint64_t>(2 * lines));
    EXPECT_GT(mesi.totals().invalsSent, 0u);
    EXPECT_EQ(mesi.totals().updatesSent, 0u);
    // The refreshed copy turns P1's final pass into pure cache hits.
    EXPECT_EQ(dragon.procs[1].c.misses(),
              static_cast<std::uint64_t>(lines));
    EXPECT_EQ(mesi.procs[1].c.misses(),
              static_cast<std::uint64_t>(2 * lines));
}

TEST(DirectoryFormats, CoarseVectorOverInvalidatesWithinTheRegion)
{
    // 8 processors, regions of 4: P1 is the only sharer, but the
    // coarse vector can only say "someone in procs 0..3", so P0's
    // upgrade also signals P2 and P3 — spuriously.
    const int lines = 8;
    sim::Addr base = 0;
    const std::uint32_t lineBytes =
        sim::MachineConfig::origin2000(8).lineBytes;
    const sim::RunResult exact =
        runSharingLitmus(comboConfig("mesi", "fullbv", 8), lines, &base);
    const sim::RunResult coarse =
        runSharingLitmus(comboConfig("mesi", "coarse:4", 8), lines);

    EXPECT_EQ(exact.totals().invalsSpurious, 0u);
    EXPECT_GT(coarse.totals().invalsSpurious, 0u);
    // Real invalidations (and the copies they destroy) are identical:
    // over-signalling costs messages, not correctness.
    EXPECT_EQ(coarse.totals().invalsSent, exact.totals().invalsSent);
    EXPECT_EQ(coarse.totals().invalsReceived,
              exact.totals().invalsReceived);
    // The obs sharing profiler attributes only *real* invalidations
    // to the line — spurious fan-out must not inflate the paper's
    // sharing statistics.
    ASSERT_TRUE(exact.trace && coarse.trace);
    for (int i = 0; i < lines; ++i) {
        const sim::LineAddr line =
            base + static_cast<sim::Addr>(i) * lineBytes;
        EXPECT_GT(exact.trace->sharing().report(line).invalidations, 0u)
            << "line " << i;
        EXPECT_EQ(coarse.trace->sharing().report(line).invalidations,
                  exact.trace->sharing().report(line).invalidations)
            << "line " << i;
    }
}

TEST(DirectoryFormats, LimitedPointerOverflowBroadcasts)
{
    // ptr:1 with two readers: the second read overflows the pointer
    // set, so the next invalidation broadcasts to every processor —
    // including P3, which never touched the line.
    const int lines = 8;
    const sim::RunResult exact =
        runSharingLitmus(comboConfig("mesi", "fullbv"), lines);
    const sim::RunResult ptr =
        runSharingLitmus(comboConfig("mesi", "ptr:1"), lines);

    EXPECT_EQ(exact.totals().invalsSpurious, 0u);
    EXPECT_GT(ptr.totals().invalsSpurious, 0u);
    EXPECT_EQ(ptr.totals().invalsSent, exact.totals().invalsSent);
    EXPECT_EQ(ptr.totals().invalsReceived,
              exact.totals().invalsReceived);

    // A generous pointer budget never overflows on this program.
    const sim::RunResult wide =
        runSharingLitmus(comboConfig("mesi", "ptr:8"), lines);
    EXPECT_EQ(wide.totals().invalsSpurious, 0u);
}

TEST(DirectoryFormats, PointerOverflowBroadcastsDragonUpdatesToo)
{
    // Overflow-broadcast composes with an *update* protocol: after
    // the second reader overflows ptr:1, P0's second write pushes its
    // Dragon update to every processor — P3's copy-less update is
    // spurious traffic, while the real updates (and the cache hits
    // they enable) match the exact-sharer machine bit for bit.
    const int lines = 8;
    const sim::RunResult exact =
        runSharingLitmus(comboConfig("dragon", "fullbv"), lines);
    const sim::RunResult ptr =
        runSharingLitmus(comboConfig("dragon", "ptr:1"), lines);

    EXPECT_EQ(exact.totals().invalsSpurious, 0u);
    EXPECT_GT(ptr.totals().invalsSpurious, 0u);
    EXPECT_EQ(ptr.totals().updatesSent, exact.totals().updatesSent);
    EXPECT_EQ(ptr.totals().updatesReceived,
              exact.totals().updatesReceived);
    // Dragon stays an update protocol under overflow: broadcasting
    // must not turn updates into invalidations.
    EXPECT_EQ(exact.totals().invalsSent, 0u);
    EXPECT_EQ(ptr.totals().invalsSent, 0u);
    EXPECT_EQ(ptr.totals().invalsReceived, 0u);
    // The refreshed copies still serve P1's final pass from cache.
    EXPECT_EQ(ptr.procs[1].c.misses(), exact.procs[1].c.misses());

    // ptr:4 holds all three sharers of this program: no overflow, no
    // spurious fan-out.
    const sim::RunResult wide =
        runSharingLitmus(comboConfig("dragon", "ptr:4"), lines);
    EXPECT_EQ(wide.totals().invalsSpurious, 0u);
    EXPECT_EQ(wide.totals().updatesSent, exact.totals().updatesSent);
}

TEST(DirectoryFormats, CompressedFormatsStayCoherentUnderTheOracle)
{
    // Spurious fan-out must never touch cache contents: an oracle-
    // checked stress run over both compressed formats stays clean.
    for (const char* fmt : {"coarse:2", "ptr:1"}) {
        check::StressOptions opt;
        opt.seed = 11;
        opt.procs = 8;
        opt.opsPerProc = 200;
        ASSERT_TRUE(opt.machine.dirFormat.parse(fmt));
        const check::StressReport rep = check::runStress(opt);
        EXPECT_FALSE(rep.failed) << fmt << ": " << rep.message;
    }
}

#ifdef CCNUMA_CHECK_MUTATE
TEST(ProtocolMutation, CorruptMoesiTableIsCaughtAndShrinks)
{
    // The tables are consulted, not decoration: zero out the
    // remote-write x Shared cell of this machine's private MOESI copy
    // (stores stop invalidating sharers) and the SC oracle must catch
    // the stale copies, with a small ddmin witness.
    check::StressOptions opt;
    opt.seed = 1;
    opt.procs = 8;
    opt.opsPerProc = 250;
    ASSERT_TRUE(opt.machine.protocol.parse("moesi"));
    opt.mutation = sim::CheckMutation::CorruptMoesiTable;

    const check::StressReport rep = check::runStress(opt);
    ASSERT_TRUE(rep.failed) << "corrupted table went undetected";
    EXPECT_GT(rep.failCommit, 0u);

    const check::StressReport replay = check::runStress(opt);
    EXPECT_TRUE(replay == rep);

    const check::ShrinkResult sh =
        check::shrink(check::generate(opt), opt);
    EXPECT_TRUE(sh.report.failed);
    EXPECT_LE(sh.opsAfter, 50u);

    // The same machine with an uncorrupted table is clean.
    check::StressOptions clean = opt;
    clean.mutation = sim::CheckMutation::None;
    EXPECT_FALSE(check::runStress(clean).failed);
}
#else
TEST(ProtocolMutation, CorruptMoesiTableIsCaughtAndShrinks)
{
    GTEST_SKIP() << "built with CCNUMA_CHECK_MUTATE=OFF";
}
#endif
