/**
 * @file
 * Tests for the study framework (core library): measurement semantics,
 * sequential-time caching, breakdown math, report formatting.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "core/report.hh"
#include "core/study.hh"

using namespace ccnuma;

TEST(Study, MeasureUsesSeqCache)
{
    core::SeqBaselineCache cache;
    const sim::MachineConfig cfg = sim::MachineConfig::origin2000(4);
    int calls = 0;
    const auto factory = [&] {
        ++calls;
        return apps::makeApp("fft", 1 << 12);
    };
    const auto m1 = core::measure(cfg, factory, &cache, "k");
    EXPECT_EQ(calls, 2) << "seq + par";
    const auto m2 = core::measure(cfg, factory, &cache, "k");
    EXPECT_EQ(calls, 3) << "cached seq: only the parallel app built";
    EXPECT_EQ(m1.seqTime, m2.seqTime);
    EXPECT_EQ(m1.parTime, m2.parTime);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.lookup("k"), m1.seqTime);
}

TEST(Study, MachineConfigPresets)
{
    const sim::MachineConfig o128 = sim::MachineConfig::origin2000(128);
    EXPECT_EQ(o128.numProcs, 128);
    EXPECT_TRUE(o128.validate().empty());

    const sim::MachineConfig uni = sim::MachineConfig::uniprocessor();
    EXPECT_EQ(uni.numProcs, 1);
    EXPECT_FALSE(uni.oneProcPerNode);
    EXPECT_FALSE(uni.trace.any());
    EXPECT_TRUE(uni.validate().empty());

    sim::MachineConfig traced = o128;
    traced.trace.events = true;
    traced.oneProcPerNode = true;
    const sim::MachineConfig base = traced.baseline();
    EXPECT_EQ(base.numProcs, 1);
    EXPECT_FALSE(base.oneProcPerNode);
    EXPECT_FALSE(base.trace.any());
    EXPECT_EQ(base.cacheBytes, traced.cacheBytes);
}

TEST(Study, EfficiencyMath)
{
    core::Measurement m;
    m.seqTime = 1000;
    m.parTime = 100;
    m.nprocs = 5;
    EXPECT_DOUBLE_EQ(m.speedup(), 10.0);
    EXPECT_DOUBLE_EQ(m.efficiency(), 2.0);
}

TEST(Study, BreakdownFractionsSumToOne)
{
    sim::MachineConfig cfg;
    cfg.numProcs = 8;
    auto app = apps::makeApp("ocean", 66);
    const sim::RunResult r = core::runApp(cfg, *app);
    for (int p = 0; p < 8; ++p) {
        const auto b = r.breakdown(p);
        EXPECT_NEAR(b.busy + b.mem + b.sync, 1.0, 1e-9) << p;
        EXPECT_GE(b.busy, 0.0);
        EXPECT_GE(b.mem, 0.0);
        EXPECT_GE(b.sync, 0.0);
    }
    const auto avg = r.breakdown();
    EXPECT_NEAR(avg.busy + avg.mem + avg.sync, 1.0, 1e-9);
}

TEST(Study, AggregateCountersSumProcs)
{
    sim::MachineConfig cfg;
    cfg.numProcs = 4;
    auto app = apps::makeApp("radix", 1 << 14);
    const sim::RunResult r = core::runApp(cfg, *app);
    const auto tot = r.totals();
    std::uint64_t loads = 0;
    for (const auto& ps : r.procs)
        loads += ps.c.loads;
    EXPECT_EQ(tot.loads, loads);
    EXPECT_GT(tot.misses(), 0u);
}

TEST(Study, FormatHelpers)
{
    EXPECT_EQ(core::fmt(1.2345, 7, 2), "   1.23");
    EXPECT_EQ(core::fmt(-1.5, 6, 1), "  -1.5");
}

TEST(Study, SpeedupHelpersInStats)
{
    EXPECT_DOUBLE_EQ(sim::speedup(100, 10), 10.0);
    EXPECT_DOUBLE_EQ(sim::efficiency(100, 10, 5), 2.0);
    EXPECT_DOUBLE_EQ(sim::speedup(100, 0), 0.0);
}
