/**
 * @file
 * Property tests of the coherence protocol: after arbitrary randomized
 * access interleavings, the cache/directory invariants must hold
 * (MemSys::validateCoherence), across machine shapes and sharing
 * patterns.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/rng.hh"

using namespace ccnuma::sim;

namespace {

struct Shape {
    int procs;
    std::uint64_t cacheBytes;
    int sharingLines; ///< Size of the hot shared region, in lines.
};

std::string
shapeName(const ::testing::TestParamInfo<Shape>& info)
{
    return "p" + std::to_string(info.param.procs) + "_c" +
           std::to_string(info.param.cacheBytes >> 10) + "k_s" +
           std::to_string(info.param.sharingLines);
}

} // namespace

class CoherenceProperty : public ::testing::TestWithParam<Shape>
{
};

TEST_P(CoherenceProperty, InvariantsHoldAfterRandomWorkload)
{
    const Shape sh = GetParam();
    MachineConfig cfg;
    cfg.numProcs = sh.procs;
    cfg.cacheBytes = sh.cacheBytes;
    Machine m(cfg);
    const Addr shared = m.alloc(static_cast<std::uint64_t>(
                                    sh.sharingLines) * 128);
    const Addr priv = m.alloc(1u << 20);
    const BarrierId bar = m.barrierCreate();

    RunResult r = m.run([=](Cpu& cpu) -> Task {
        Rng rng(7 + cpu.id());
        for (int i = 0; i < 600; ++i) {
            const bool is_shared = rng.uniform() < 0.5;
            const bool write = rng.uniform() < 0.3;
            const Addr a =
                is_shared
                    ? shared + rng.range(sh.sharingLines) * 128
                    : priv + (static_cast<Addr>(cpu.id()) * 8192 +
                              rng.range(64) * 128);
            if (write)
                cpu.write(a);
            else
                cpu.read(a);
            cpu.busy(rng.range(80));
            if (i % 4 == 0)
                co_await cpu.checkpoint();
            if (i % 150 == 149)
                co_await cpu.barrier(bar);
        }
        co_return;
    });

    EXPECT_EQ(m.mem().validateCoherence(), "");
    // Sanity: the workload actually exercised sharing.
    const auto tot = r.totals();
    EXPECT_GT(tot.invalsSent + tot.missRemoteDirty, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoherenceProperty,
    ::testing::Values(Shape{2, 8 << 10, 16},   // tiny cache: evictions
                      Shape{4, 64 << 10, 64},
                      Shape{16, 16 << 10, 8},  // hot contention
                      Shape{32, 64 << 10, 256},
                      Shape{64, 32 << 10, 128}),
    shapeName);

TEST(CoherenceProperty, ValidatorCatchesInjectedInconsistency)
{
    // The validator itself must detect a broken state: we fabricate one
    // by invalidating a cache line behind the directory's back.
    MachineConfig cfg;
    cfg.numProcs = 2;
    Machine m(cfg);
    const Addr a = m.alloc(4096);
    m.run([a](Cpu& cpu) -> Task {
        if (cpu.id() == 0)
            cpu.write(a);
        co_return;
    });
    ASSERT_EQ(m.mem().validateCoherence(), "");
    // Break it: drop the owner's line without telling the directory.
    const_cast<Cache&>(m.mem().cache(0)).invalidate(a);
    EXPECT_NE(m.mem().validateCoherence(), "");
}

TEST(CoherenceProperty, PrefetchPreservesInvariants)
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    Machine m(cfg);
    const Addr a = m.alloc(1 << 18);
    const BarrierId bar = m.barrierCreate();
    m.run([=](Cpu& cpu) -> Task {
        Rng rng(cpu.id());
        for (int i = 0; i < 300; ++i) {
            const Addr x = a + rng.range(1u << 11) * 128;
            if (i % 3 == 0)
                cpu.prefetch(x);
            else if (i % 3 == 1)
                cpu.read(x);
            else
                cpu.write(x);
            if (i % 8 == 0)
                co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);
        co_return;
    });
    EXPECT_EQ(m.mem().validateCoherence(), "");
}
