/**
 * @file
 * Parameterized tests over synchronization implementations (LL-SC vs
 * fetch&op, tournament vs centralized barriers): semantics must be
 * identical, costs must rank as expected.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

using namespace ccnuma::sim;

namespace {

struct SyncParam {
    SyncKind kind;
    BarrierAlg alg;
};

std::string
paramName(const ::testing::TestParamInfo<SyncParam>& info)
{
    std::string s = info.param.kind == SyncKind::LLSC ? "LLSC" : "FetchOp";
    s += info.param.alg == BarrierAlg::Tournament ? "_Tournament"
                                                  : "_Centralized";
    return s;
}

} // namespace

class SyncVariants : public ::testing::TestWithParam<SyncParam>
{
  protected:
    MachineConfig
    cfg(int procs) const
    {
        MachineConfig c;
        c.numProcs = procs;
        c.cacheBytes = 64 << 10;
        c.syncKind = GetParam().kind;
        c.barrierAlg = GetParam().alg;
        return c;
    }
};

TEST_P(SyncVariants, BarrierKeepsPhasesOrdered)
{
    // No processor may enter phase k+1 before all finish phase k; we
    // verify via a host-side phase counter.
    const int P = 16;
    Machine m(cfg(P));
    const BarrierId bar = m.barrierCreate();
    auto phase = std::make_shared<std::vector<int>>(P, 0);
    auto violations = std::make_shared<int>(0);
    m.run([=](Cpu& cpu) -> Task {
        for (int k = 0; k < 5; ++k) {
            cpu.busy(100 + 37 * cpu.id());
            (*phase)[cpu.id()] = k + 1;
            co_await cpu.barrier(bar);
            for (int q = 0; q < 16; ++q)
                if ((*phase)[q] < k + 1)
                    ++(*violations);
            co_await cpu.checkpoint();
        }
        co_return;
    });
    EXPECT_EQ(*violations, 0);
}

TEST_P(SyncVariants, LockProvidesMutualExclusion)
{
    const int P = 12;
    Machine m(cfg(P));
    const LockId lk = m.lockCreate();
    auto inside = std::make_shared<int>(0);
    auto max_inside = std::make_shared<int>(0);
    m.run([=](Cpu& cpu) -> Task {
        for (int k = 0; k < 3; ++k) {
            co_await cpu.acquire(lk);
            ++(*inside);
            *max_inside = std::max(*max_inside, *inside);
            for (int c = 0; c < 3; ++c) {
                cpu.busy(400);
                co_await cpu.checkpoint();
            }
            --(*inside);
            cpu.release(lk);
            cpu.busy(200);
            co_await cpu.checkpoint();
        }
        co_return;
    });
    EXPECT_EQ(*max_inside, 1) << "two holders inside the lock";
}

TEST_P(SyncVariants, BarrierWaitChargedToEarlyArrivers)
{
    const int P = 8;
    Machine m(cfg(P));
    const BarrierId bar = m.barrierCreate();
    RunResult r = m.run([bar](Cpu& cpu) -> Task {
        for (int i = 0; i < cpu.id() * 20 + 1; ++i) {
            cpu.busy(500);
            co_await cpu.checkpoint();
        }
        co_await cpu.barrier(bar);
        co_return;
    });
    // Proc 0 arrives earliest, waits the most.
    EXPECT_GT(r.procs[0].t.syncWait, r.procs[P - 1].t.syncWait);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SyncVariants,
    ::testing::Values(SyncParam{SyncKind::LLSC, BarrierAlg::Tournament},
                      SyncParam{SyncKind::LLSC, BarrierAlg::Centralized},
                      SyncParam{SyncKind::FetchOp,
                                BarrierAlg::Tournament},
                      SyncParam{SyncKind::FetchOp,
                                BarrierAlg::Centralized}),
    paramName);

TEST(SyncCosts, CentralizedBarrierCostGrowsFasterWithP)
{
    auto episode = [](BarrierAlg alg, int procs) {
        MachineConfig c;
        c.numProcs = procs;
        c.barrierAlg = alg;
        Machine m(c);
        const BarrierId bar = m.barrierCreate();
        RunResult r = m.run([bar](Cpu& cpu) -> Task {
            for (int i = 0; i < 20; ++i)
                co_await cpu.barrier(bar);
            co_return;
        });
        return static_cast<double>(r.time) / 20;
    };
    const double cen_growth = episode(BarrierAlg::Centralized, 128) /
                              episode(BarrierAlg::Centralized, 16);
    const double trn_growth = episode(BarrierAlg::Tournament, 128) /
                              episode(BarrierAlg::Tournament, 16);
    EXPECT_GT(cen_growth, trn_growth)
        << "O(P) serialization vs O(log P)";
}

TEST(SyncCosts, FetchOpCheapensCentralizedArrival)
{
    auto episode = [](SyncKind kind) {
        MachineConfig c;
        c.numProcs = 64;
        c.syncKind = kind;
        c.barrierAlg = BarrierAlg::Centralized;
        Machine m(c);
        const BarrierId bar = m.barrierCreate();
        RunResult r = m.run([bar](Cpu& cpu) -> Task {
            for (int i = 0; i < 20; ++i)
                co_await cpu.barrier(bar);
            co_return;
        });
        return r.time;
    };
    EXPECT_LT(episode(SyncKind::FetchOp), episode(SyncKind::LLSC))
        << "at-memory ops avoid LL-SC line bouncing";
}
