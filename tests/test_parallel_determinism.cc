/**
 * @file
 * Seeded determinism property tests for the parallel scout/replay
 * engine: the same (seed, config) must produce an identical state hash
 * and identical serialized metrics across repeated runs and across
 * worker counts — including on the stress generator's hostile
 * tiny-cache round-robin machine, where evictions, remote misses and
 * contended locks are maximally frequent.
 */

#include <gtest/gtest.h>

#include "check/golden.hh"
#include "check/stress.hh"
#include "sim/config.hh"

using namespace ccnuma;

namespace {

check::StressOptions
hostileOptions(std::uint64_t seed, int sim_jobs)
{
    check::StressOptions opt;
    opt.seed = seed;
    opt.machine.simJobs = sim_jobs;
    return opt;
}

} // namespace

TEST(ParallelDeterminism, StressHashMatchesSerialOracle)
{
    // The hostile machine (4 KB L2, 1 KB round-robin pages, 8 procs on
    // 4 nodes) under several seeds: the parallel engine must reproduce
    // the serial run bit-for-bit, so the full StressReport — state
    // hash, final time, commit and validation counts — compares equal.
    for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1999ull}) {
        const check::StressReport oracle =
            check::runStress(hostileOptions(seed, 1));
        ASSERT_FALSE(oracle.failed) << oracle.message;
        for (const int jobs : {2, 4, 0}) {
            const check::StressReport par =
                check::runStress(hostileOptions(seed, jobs));
            EXPECT_TRUE(oracle == par)
                << "seed " << seed << " simJobs " << jobs
                << ": hash " << oracle.stateHash << " vs "
                << par.stateHash << " (" << par.message << ")";
        }
    }
}

TEST(ParallelDeterminism, RepeatedRunsBitIdentical)
{
    // Host-scheduling independence: repeated parallel runs of the same
    // (seed, config) are identical with themselves, not just with the
    // serial oracle.
    const check::StressReport first =
        check::runStress(hostileOptions(1234, 4));
    ASSERT_FALSE(first.failed) << first.message;
    for (int rep = 0; rep < 3; ++rep) {
        const check::StressReport again =
            check::runStress(hostileOptions(1234, 4));
        EXPECT_TRUE(first == again) << "repeat " << rep;
    }
}

TEST(ParallelDeterminism, DisciplinedProgramsToo)
{
    // The race-free-by-construction generator mode exercises different
    // lock discipline; same contract.
    for (const std::uint64_t seed : {3ull, 77ull}) {
        check::StressOptions base = hostileOptions(seed, 1);
        base.disciplined = true;
        const check::StressReport oracle = check::runStress(base);
        ASSERT_FALSE(oracle.failed) << oracle.message;
        check::StressOptions par_opt = base;
        par_opt.machine.simJobs = 4;
        const check::StressReport par = check::runStress(par_opt);
        EXPECT_TRUE(oracle == par) << "seed " << seed;
    }
}

TEST(ParallelDeterminism, GoldenJsonStableAcrossWorkerCounts)
{
    // The serialized metrics document — what the CI determinism matrix
    // diffs — must be byte-identical for every worker count.
    const std::string base = check::toJson(check::computeGolden(4, 1));
    for (const int jobs : {2, 4}) {
        const std::string doc =
            check::toJson(check::computeGolden(4, jobs));
        EXPECT_EQ(base, doc) << "simJobs " << jobs;
    }
}
