/**
 * @file
 * Litmus and self-check tests for the happens-before race analyzer.
 *
 * Hand-built StressPrograms pin down the detector's verdict on the
 * four canonical cases (true race, lock-protected, barrier-separated,
 * false sharing), a fixed-seed run checks determinism, and -- when the
 * mutation hooks are compiled in -- CheckMutation::DropLockAcquire
 * must turn a disciplined race-free program into a detected race with
 * a small ddmin-shrunk witness.
 */

#include <gtest/gtest.h>

#include "analyze/race.hh"
#include "analyze/sweep.hh"
#include "check/shrink.hh"
#include "check/stress.hh"

namespace ccnuma {
namespace {

using check::Op;
using check::OpKind;
using check::Region;
using check::StressProgram;

/// Two-proc program skeleton; tests append ops per processor.
StressProgram
twoProcs()
{
    StressProgram prog;
    prog.ops.resize(2);
    prog.numLocks = 1;
    return prog;
}

check::StressOptions
litmusOptions()
{
    check::StressOptions opt;
    opt.procs = 2;
    opt.numLocks = 1;
    return opt;
}

TEST(AnalyzeLitmus, UnsynchronizedWritesRace)
{
    StressProgram prog = twoProcs();
    prog.ops[0].push_back({OpKind::Write, Region::Shared, 0, 0});
    prog.ops[1].push_back({OpKind::Write, Region::Shared, 0, 0});

    const analyze::RaceStressResult r =
        analyze::raceExecute(prog, litmusOptions());
    ASSERT_EQ(r.races.size(), 1u);
    EXPECT_TRUE(r.report.failed);
    EXPECT_EQ(r.stats.racesFound, 1u);
    // Both sides of the report are stores with no lock context.
    const std::string msg = r.races.front().format();
    EXPECT_NE(msg.find("store"), std::string::npos) << msg;
    EXPECT_NE(msg.find("locks none"), std::string::npos) << msg;
}

TEST(AnalyzeLitmus, UnsynchronizedReadWriteRaces)
{
    StressProgram prog = twoProcs();
    prog.ops[0].push_back({OpKind::Read, Region::Shared, 0, 0});
    prog.ops[1].push_back({OpKind::Write, Region::Shared, 0, 0});

    const analyze::RaceStressResult r =
        analyze::raceExecute(prog, litmusOptions());
    EXPECT_EQ(r.races.size(), 1u);
    EXPECT_TRUE(r.report.failed);
}

TEST(AnalyzeLitmus, LockProtectedWritesDoNotRace)
{
    StressProgram prog = twoProcs();
    for (int p = 0; p < 2; ++p) {
        const std::uint64_t g = 100 + static_cast<std::uint64_t>(p);
        prog.ops[p].push_back({OpKind::LockAcq, Region::Shared, 0, g});
        prog.ops[p].push_back({OpKind::Write, Region::Shared, 0, g});
        prog.ops[p].push_back({OpKind::Read, Region::Shared, 0, g});
        prog.ops[p].push_back({OpKind::LockRel, Region::Shared, 0, g});
    }

    const analyze::RaceStressResult r =
        analyze::raceExecute(prog, litmusOptions());
    EXPECT_TRUE(r.races.empty())
        << r.races.front().format();
    EXPECT_FALSE(r.report.failed) << r.report.message;
    EXPECT_EQ(r.stats.locksetAlarms, 0u);
}

TEST(AnalyzeLitmus, BarrierSeparatedWritesDoNotRace)
{
    StressProgram prog = twoProcs();
    // P0 writes before the barrier, P1 after it.
    prog.ops[0].push_back({OpKind::Write, Region::Shared, 0, 0});
    prog.ops[0].push_back({OpKind::Barrier, Region::Shared, 0, 500});
    prog.ops[1].push_back({OpKind::Barrier, Region::Shared, 0, 500});
    prog.ops[1].push_back({OpKind::Write, Region::Shared, 0, 0});
    prog.ops[1].push_back({OpKind::Read, Region::Shared, 0, 0});

    const analyze::RaceStressResult r =
        analyze::raceExecute(prog, litmusOptions());
    EXPECT_TRUE(r.races.empty())
        << r.races.front().format();
    EXPECT_EQ(r.stats.barrierEpisodes, 1u);
}

TEST(AnalyzeLitmus, FalseSharingIsNotARace)
{
    // Same line, per-processor words: heavy line bouncing, zero
    // same-byte conflicts. The detector must stay quiet.
    StressProgram prog = twoProcs();
    for (int p = 0; p < 2; ++p)
        for (int k = 0; k < 8; ++k) {
            prog.ops[p].push_back(
                {OpKind::Write, Region::FalseShared, 0, 0});
            prog.ops[p].push_back(
                {OpKind::Read, Region::FalseShared, 0, 0});
        }

    const analyze::RaceStressResult r =
        analyze::raceExecute(prog, litmusOptions());
    EXPECT_TRUE(r.races.empty())
        << r.races.front().format();
    EXPECT_FALSE(r.report.failed) << r.report.message;
}

TEST(AnalyzeLitmus, AtomicRmwPairsDoNotRaceButRmwVsStoreDoes)
{
    StressProgram atomics = twoProcs();
    atomics.ops[0].push_back({OpKind::Rmw, Region::Shared, 0, 0});
    atomics.ops[1].push_back({OpKind::Rmw, Region::Shared, 0, 0});
    EXPECT_TRUE(
        analyze::raceExecute(atomics, litmusOptions()).races.empty());

    StressProgram mixed = twoProcs();
    mixed.ops[0].push_back({OpKind::Rmw, Region::Shared, 0, 0});
    mixed.ops[1].push_back({OpKind::Write, Region::Shared, 0, 0});
    EXPECT_FALSE(
        analyze::raceExecute(mixed, litmusOptions()).races.empty());
}

TEST(AnalyzeStress, DisciplinedProgramsAreRaceFreeAndDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        check::StressOptions opt = analyze::raceStressOptions(seed);
        const StressProgram prog = check::generate(opt);

        const analyze::RaceStressResult a =
            analyze::raceExecute(prog, opt);
        EXPECT_TRUE(a.races.empty())
            << "seed " << seed << ": " << a.races.front().format();
        EXPECT_FALSE(a.report.failed) << a.report.message;

        // Bit-identical replay: same execution, same detector state.
        const analyze::RaceStressResult b =
            analyze::raceExecute(prog, opt);
        EXPECT_EQ(a.report.stateHash, b.report.stateHash);
        EXPECT_EQ(a.report, b.report);
        EXPECT_EQ(a.stats.memOps, b.stats.memOps);
        EXPECT_EQ(a.stats.syncOps, b.stats.syncOps);
        EXPECT_EQ(a.stats.vcJoins, b.stats.vcJoins);
        EXPECT_EQ(a.stats.racesFound, b.stats.racesFound);
    }
}

#ifdef CCNUMA_CHECK_MUTATE
TEST(AnalyzeStress, DropLockAcquireIsDetectedAndShrinksSmall)
{
    check::StressOptions opt = analyze::raceStressOptions(7);
    const StressProgram prog = check::generate(opt);

    // Sanity: the unmutated run is race-free.
    ASSERT_TRUE(analyze::raceExecute(prog, opt).races.empty());

    opt.mutation = sim::CheckMutation::DropLockAcquire;
    const analyze::RaceStressResult mutated =
        analyze::raceExecute(prog, opt);
    ASSERT_FALSE(mutated.races.empty())
        << "DropLockAcquire must introduce a detectable race";
    EXPECT_TRUE(mutated.report.failed);

    const check::ShrinkResult shrunk =
        analyze::shrinkRace(prog, opt);
    EXPECT_TRUE(analyze::raceExecute(shrunk.program, opt)
                    .report.failed);
    EXPECT_LE(shrunk.program.numOps(), 50u)
        << check::formatWitness(shrunk.program);
}
#endif // CCNUMA_CHECK_MUTATE

} // namespace
} // namespace ccnuma
