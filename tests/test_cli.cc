/**
 * @file
 * Tests for the shared command-line helper (core::cli) used by the
 * example and bench drivers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/cli.hh"
#include "sim/config.hh"

using namespace ccnuma;

namespace {

core::cli::Options
parseArgs(std::vector<const char*> args)
{
    args.insert(args.begin(), "prog");
    return core::cli::parse(static_cast<int>(args.size()),
                            const_cast<char**>(args.data()));
}

/// Scoped unset of the env vars cli::parse consults.
struct CleanEnv {
    CleanEnv()
    {
        unsetenv("CCNUMA_TRACE");
        unsetenv("CCNUMA_JSON");
        unsetenv("CCNUMA_JOBS");
        unsetenv("CCNUMA_SIM_JOBS");
        unsetenv("CCNUMA_SEED");
        unsetenv("CCNUMA_EPOCH");
    }
};

} // namespace

TEST(Cli, DefaultsAreEmpty)
{
    CleanEnv env;
    const auto opt = parseArgs({});
    EXPECT_TRUE(opt.traceFile.empty());
    EXPECT_TRUE(opt.jsonFile.empty());
    EXPECT_EQ(opt.jobs, 1);
    EXPECT_TRUE(opt.positional.empty());
    EXPECT_TRUE(opt.unknown.empty());
}

TEST(Cli, ParsesFlagsAndPositionals)
{
    CleanEnv env;
    const auto opt = parseArgs({"barnes", "--trace=t.json", "16384",
                                "--jobs=4", "--json=m.json"});
    EXPECT_EQ(opt.traceFile, "t.json");
    EXPECT_EQ(opt.jsonFile, "m.json");
    EXPECT_EQ(opt.jobs, 4);
    ASSERT_EQ(opt.positional.size(), 2u);
    EXPECT_EQ(opt.positionalOr(0, std::string("x")), "barnes");
    EXPECT_EQ(opt.positionalOr(1, std::uint64_t{0}), 16384u);
    EXPECT_EQ(opt.positionalOr(2, std::string("dflt")), "dflt");
    EXPECT_EQ(opt.positionalOr(9, std::uint64_t{7}), 7u);
}

TEST(Cli, CollectsUnknownFlags)
{
    CleanEnv env;
    const auto opt = parseArgs({"--frobnicate", "--jobs=2", "app"});
    ASSERT_EQ(opt.unknown.size(), 1u);
    EXPECT_EQ(opt.unknown[0], "--frobnicate");
    EXPECT_FALSE(core::cli::warnUnknown(opt));
    EXPECT_TRUE(core::cli::warnUnknown(parseArgs({"app"})));
}

TEST(Cli, EnvFallbacksAndFlagPrecedence)
{
    CleanEnv env;
    setenv("CCNUMA_TRACE", "env-trace.json", 1);
    setenv("CCNUMA_JSON", "env-metrics.json", 1);
    setenv("CCNUMA_JOBS", "8", 1);
    const auto from_env = parseArgs({});
    EXPECT_EQ(from_env.traceFile, "env-trace.json");
    EXPECT_EQ(from_env.jsonFile, "env-metrics.json");
    EXPECT_EQ(from_env.jobs, 8);

    const auto overridden = parseArgs({"--jobs=2", "--trace=cli.json"});
    EXPECT_EQ(overridden.jobs, 2) << "flag beats env";
    EXPECT_EQ(overridden.traceFile, "cli.json");
    EXPECT_EQ(overridden.jsonFile, "env-metrics.json");
    unsetenv("CCNUMA_TRACE");
    unsetenv("CCNUMA_JSON");
    unsetenv("CCNUMA_JOBS");
}

TEST(Cli, JobsZeroMeansAutoDetect)
{
    CleanEnv env;
    // 0 is passed through; the StudyRunner resolves it to the host's
    // hardware concurrency.
    EXPECT_EQ(parseArgs({"--jobs=0"}).jobs, 0);
}

TEST(Cli, SeedFlagAndEnvFallback)
{
    CleanEnv env;
    EXPECT_EQ(parseArgs({}).seed, 1u) << "default seed";
    EXPECT_EQ(parseArgs({"--seed=42"}).seed, 42u);

    setenv("CCNUMA_SEED", "7", 1);
    EXPECT_EQ(parseArgs({}).seed, 7u);
    EXPECT_EQ(parseArgs({"--seed=9"}).seed, 9u) << "flag beats env";
    unsetenv("CCNUMA_SEED");
}

TEST(Cli, MalformedNumericValuesKeepDefaultsAndAreReported)
{
    CleanEnv env;
    for (const char* bad :
         {"--jobs=abc", "--jobs=", "--jobs=3x", "--jobs=-2"}) {
        const auto opt = parseArgs({bad});
        EXPECT_EQ(opt.jobs, 1) << bad;
        ASSERT_EQ(opt.malformed.size(), 1u) << bad;
        EXPECT_FALSE(core::cli::warnUnknown(opt)) << bad;
    }
    const auto opt = parseArgs({"--seed=0x10"});
    EXPECT_EQ(opt.seed, 1u) << "hex is rejected, default kept";
    EXPECT_FALSE(opt.malformed.empty());

    setenv("CCNUMA_SEED", "not-a-number", 1);
    const auto env_opt = parseArgs({});
    EXPECT_EQ(env_opt.seed, 1u);
    ASSERT_EQ(env_opt.malformed.size(), 1u);
    EXPECT_NE(env_opt.malformed[0].find("CCNUMA_SEED"),
              std::string::npos);
    unsetenv("CCNUMA_SEED");
}

TEST(Cli, EpochCyclesFlagAndEnvFallback)
{
    CleanEnv env;
    EXPECT_EQ(parseArgs({}).epochCycles, 0u)
        << "default 0 keeps the TraceConfig epoch length";
    EXPECT_EQ(parseArgs({"--epoch-cycles=50000"}).epochCycles, 50000u);

    setenv("CCNUMA_EPOCH", "25000", 1);
    EXPECT_EQ(parseArgs({}).epochCycles, 25000u);
    EXPECT_EQ(parseArgs({"--epoch-cycles=1"}).epochCycles, 1u)
        << "flag beats env";
    unsetenv("CCNUMA_EPOCH");

    const auto bad = parseArgs({"--epoch-cycles=soon"});
    EXPECT_EQ(bad.epochCycles, 0u);
    EXPECT_FALSE(bad.malformed.empty());
}

TEST(Cli, StrictU64Parse)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(core::cli::parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(core::cli::parseU64("18446744073709551615", v));
    EXPECT_EQ(v, 18446744073709551615ull);
    EXPECT_FALSE(core::cli::parseU64("", v));
    EXPECT_FALSE(core::cli::parseU64("+3", v));
    EXPECT_FALSE(core::cli::parseU64("-3", v));
    EXPECT_FALSE(core::cli::parseU64("3 ", v));
    EXPECT_FALSE(core::cli::parseU64("18446744073709551616", v))
        << "overflow";
}

TEST(Cli, StrictU64ListParse)
{
    std::vector<std::uint64_t> v{99};
    EXPECT_TRUE(core::cli::parseU64List("1,8,32", v));
    EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 8, 32}));
    EXPECT_TRUE(core::cli::parseU64List("7", v));
    EXPECT_EQ(v, (std::vector<std::uint64_t>{7}));

    for (const char* bad : {"", ",", "1,", ",1", "1,,2", "1,x", "1 ,2"}) {
        v = {99};
        EXPECT_FALSE(core::cli::parseU64List(bad, v)) << bad;
        EXPECT_EQ(v, (std::vector<std::uint64_t>{99}))
            << "failed parse must not touch the output: " << bad;
    }
}

TEST(Cli, SimJobsFlagEnvAndAuto)
{
    CleanEnv env;
    EXPECT_EQ(parseArgs({}).simJobs, 1)
        << "default is the serial engine";
    EXPECT_EQ(parseArgs({"--sim-jobs=4"}).simJobs, 4);
    EXPECT_EQ(parseArgs({"--sim-jobs=0"}).simJobs, 0)
        << "0 = auto (one host thread per core), resolved by the "
           "Machine";
    EXPECT_EQ(parseArgs({"--sim-jobs=1"}).simJobs, 1);

    setenv("CCNUMA_SIM_JOBS", "8", 1);
    EXPECT_EQ(parseArgs({}).simJobs, 8);
    EXPECT_EQ(parseArgs({"--sim-jobs=2"}).simJobs, 2)
        << "flag beats env";
    unsetenv("CCNUMA_SIM_JOBS");
}

TEST(Cli, SimJobsMalformedKeepsSerialDefault)
{
    CleanEnv env;
    for (const char* bad :
         {"--sim-jobs=abc", "--sim-jobs=", "--sim-jobs=2x",
          "--sim-jobs=-1", "--sim-jobs=+2", "--sim-jobs=4.0",
          "--sim-jobs=99999999999999999999"}) {
        const auto opt = parseArgs({bad});
        EXPECT_EQ(opt.simJobs, 1) << bad;
        ASSERT_EQ(opt.malformed.size(), 1u) << bad;
        EXPECT_FALSE(core::cli::warnUnknown(opt)) << bad;
    }

    setenv("CCNUMA_SIM_JOBS", "not-a-number", 1);
    const auto env_opt = parseArgs({});
    EXPECT_EQ(env_opt.simJobs, 1);
    ASSERT_EQ(env_opt.malformed.size(), 1u);
    EXPECT_NE(env_opt.malformed[0].find("CCNUMA_SIM_JOBS"),
              std::string::npos);
    unsetenv("CCNUMA_SIM_JOBS");
}

TEST(Cli, ApplyMachineSetsSimJobs)
{
    CleanEnv env;
    auto opt = parseArgs({"--sim-jobs=4"});
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(8);
    EXPECT_EQ(cfg.simJobs, 1);
    EXPECT_TRUE(core::cli::applyMachine(opt, cfg));
    EXPECT_EQ(cfg.simJobs, 4);

    // A malformed protocol keeps its default and reports, but the
    // (valid) simJobs still lands.
    auto bad = parseArgs({"--sim-jobs=2", "--protocol=bogus"});
    sim::MachineConfig cfg2 = sim::MachineConfig::origin2000(8);
    EXPECT_FALSE(core::cli::applyMachine(bad, cfg2));
    EXPECT_EQ(cfg2.simJobs, 2);
}

TEST(Cli, TakeFlagAndSwitchConsumeUnknown)
{
    CleanEnv env;
    auto opt = parseArgs({"--shrink", "--out=base.json", "--leftover"});
    ASSERT_EQ(opt.unknown.size(), 3u);

    std::string out;
    EXPECT_TRUE(opt.takeFlag("out", out));
    EXPECT_EQ(out, "base.json");
    EXPECT_TRUE(opt.takeSwitch("shrink"));
    EXPECT_FALSE(opt.takeSwitch("shrink")) << "consumed only once";
    EXPECT_FALSE(opt.takeFlag("missing", out));

    ASSERT_EQ(opt.unknown.size(), 1u);
    EXPECT_EQ(opt.unknown[0], "--leftover");
    EXPECT_FALSE(core::cli::warnUnknown(opt));
}
