/**
 * @file
 * Tests for the shared command-line helper (core::cli) used by the
 * example and bench drivers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/cli.hh"

using namespace ccnuma;

namespace {

core::cli::Options
parseArgs(std::vector<const char*> args)
{
    args.insert(args.begin(), "prog");
    return core::cli::parse(static_cast<int>(args.size()),
                            const_cast<char**>(args.data()));
}

/// Scoped unset of the env vars cli::parse consults.
struct CleanEnv {
    CleanEnv()
    {
        unsetenv("CCNUMA_TRACE");
        unsetenv("CCNUMA_JSON");
        unsetenv("CCNUMA_JOBS");
    }
};

} // namespace

TEST(Cli, DefaultsAreEmpty)
{
    CleanEnv env;
    const auto opt = parseArgs({});
    EXPECT_TRUE(opt.traceFile.empty());
    EXPECT_TRUE(opt.jsonFile.empty());
    EXPECT_EQ(opt.jobs, 1);
    EXPECT_TRUE(opt.positional.empty());
    EXPECT_TRUE(opt.unknown.empty());
}

TEST(Cli, ParsesFlagsAndPositionals)
{
    CleanEnv env;
    const auto opt = parseArgs({"barnes", "--trace=t.json", "16384",
                                "--jobs=4", "--json=m.json"});
    EXPECT_EQ(opt.traceFile, "t.json");
    EXPECT_EQ(opt.jsonFile, "m.json");
    EXPECT_EQ(opt.jobs, 4);
    ASSERT_EQ(opt.positional.size(), 2u);
    EXPECT_EQ(opt.positionalOr(0, std::string("x")), "barnes");
    EXPECT_EQ(opt.positionalOr(1, std::uint64_t{0}), 16384u);
    EXPECT_EQ(opt.positionalOr(2, std::string("dflt")), "dflt");
    EXPECT_EQ(opt.positionalOr(9, std::uint64_t{7}), 7u);
}

TEST(Cli, CollectsUnknownFlags)
{
    CleanEnv env;
    const auto opt = parseArgs({"--frobnicate", "--jobs=2", "app"});
    ASSERT_EQ(opt.unknown.size(), 1u);
    EXPECT_EQ(opt.unknown[0], "--frobnicate");
    EXPECT_FALSE(core::cli::warnUnknown(opt));
    EXPECT_TRUE(core::cli::warnUnknown(parseArgs({"app"})));
}

TEST(Cli, EnvFallbacksAndFlagPrecedence)
{
    CleanEnv env;
    setenv("CCNUMA_TRACE", "env-trace.json", 1);
    setenv("CCNUMA_JSON", "env-metrics.json", 1);
    setenv("CCNUMA_JOBS", "8", 1);
    const auto from_env = parseArgs({});
    EXPECT_EQ(from_env.traceFile, "env-trace.json");
    EXPECT_EQ(from_env.jsonFile, "env-metrics.json");
    EXPECT_EQ(from_env.jobs, 8);

    const auto overridden = parseArgs({"--jobs=2", "--trace=cli.json"});
    EXPECT_EQ(overridden.jobs, 2) << "flag beats env";
    EXPECT_EQ(overridden.traceFile, "cli.json");
    EXPECT_EQ(overridden.jsonFile, "env-metrics.json");
    unsetenv("CCNUMA_TRACE");
    unsetenv("CCNUMA_JSON");
    unsetenv("CCNUMA_JOBS");
}

TEST(Cli, JobsZeroMeansAutoDetect)
{
    CleanEnv env;
    // 0 is passed through; the StudyRunner resolves it to the host's
    // hardware concurrency.
    EXPECT_EQ(parseArgs({"--jobs=0"}).jobs, 0);
}
