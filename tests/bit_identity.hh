/**
 * @file
 * Shared helper for the parallel-engine differential tests: assert two
 * RunResults are bit-identical, field by field.
 */

#ifndef CCNUMA_TESTS_BIT_IDENTITY_HH
#define CCNUMA_TESTS_BIT_IDENTITY_HH

#include <gtest/gtest.h>

#include <string>

#include "sim/stats.hh"

namespace ccnuma::testutil {

inline void
expectIdentical(const sim::RunResult& serial, const sim::RunResult& par,
                const std::string& what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(serial.time, par.time);
    EXPECT_EQ(serial.pageMigrations, par.pageMigrations);
    ASSERT_EQ(serial.procs.size(), par.procs.size());
    for (std::size_t p = 0; p < serial.procs.size(); ++p) {
        SCOPED_TRACE("proc " + std::to_string(p));
        const sim::ProcTimes& st = serial.procs[p].t;
        const sim::ProcTimes& pt = par.procs[p].t;
        EXPECT_EQ(st.busy, pt.busy);
        EXPECT_EQ(st.memStall, pt.memStall);
        EXPECT_EQ(st.syncWait, pt.syncWait);
        EXPECT_EQ(st.syncOp, pt.syncOp);
        EXPECT_EQ(st.lockWait, pt.lockWait);
        EXPECT_EQ(st.barrierWait, pt.barrierWait);
        const sim::ProcCounters& sc = serial.procs[p].c;
        const sim::ProcCounters& pc = par.procs[p].c;
        EXPECT_EQ(sc.loads, pc.loads);
        EXPECT_EQ(sc.stores, pc.stores);
        EXPECT_EQ(sc.l2Hits, pc.l2Hits);
        EXPECT_EQ(sc.missLocal, pc.missLocal);
        EXPECT_EQ(sc.missRemoteClean, pc.missRemoteClean);
        EXPECT_EQ(sc.missRemoteDirty, pc.missRemoteDirty);
        EXPECT_EQ(sc.upgrades, pc.upgrades);
        EXPECT_EQ(sc.invalsSent, pc.invalsSent);
        EXPECT_EQ(sc.invalsReceived, pc.invalsReceived);
        EXPECT_EQ(sc.invalsSpurious, pc.invalsSpurious);
        EXPECT_EQ(sc.updatesSent, pc.updatesSent);
        EXPECT_EQ(sc.updatesReceived, pc.updatesReceived);
        EXPECT_EQ(sc.writebacks, pc.writebacks);
        EXPECT_EQ(sc.prefetchesIssued, pc.prefetchesIssued);
        EXPECT_EQ(sc.prefetchesUseful, pc.prefetchesUseful);
        EXPECT_EQ(sc.pageMigrations, pc.pageMigrations);
        EXPECT_EQ(sc.lockAcquires, pc.lockAcquires);
        EXPECT_EQ(sc.lockContended, pc.lockContended);
        EXPECT_EQ(sc.barriersPassed, pc.barriersPassed);
    }
}

} // namespace ccnuma::testutil

#endif // CCNUMA_TESTS_BIT_IDENTITY_HH
