/**
 * @file
 * Tests for the rendering, belief-network and protein workload kernels.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "kernels/bayes.hh"
#include "kernels/protein.hh"
#include "kernels/render.hh"

using namespace ccnuma::kernels;

// ---------------- render ----------------

TEST(Render, VolumeHasShellStructure)
{
    const Volume v(64);
    EXPECT_EQ(v.voxels(), 64u * 64 * 64);
    // Center region has tissue, far corner is empty.
    EXPECT_GT(v.density(32, 32, 32), 0);
    EXPECT_EQ(v.density(0, 0, 0), 0);
}

TEST(Render, CompositeProducesOpacityAndSkewedWork)
{
    const Volume v(64);
    std::vector<std::uint32_t> work;
    const auto img = shearWarpComposite(v, 0.2, 0.1, work);
    ASSERT_EQ(img.size(), 64u * 64);
    ASSERT_EQ(work.size(), 64u);
    for (const float o : img) {
        EXPECT_GE(o, 0.0f);
        EXPECT_LE(o, 1.0f);
    }
    // Work profile is skewed: center scanlines composite far more
    // voxels than edge scanlines (early termination + empty space).
    const std::uint64_t center = work[32], edge = work[1];
    EXPECT_GT(center, 2 * (edge + 1));
}

TEST(Render, WarpPreservesValueRange)
{
    const Volume v(32);
    std::vector<std::uint32_t> work;
    const auto inter = shearWarpComposite(v, 0.1, 0.1, work);
    const auto fin = warpImage(inter, 32, 0.2);
    ASSERT_EQ(fin.size(), inter.size());
    for (const float o : fin) {
        EXPECT_GE(o, 0.0f);
        EXPECT_LE(o, 1.0f);
    }
}

TEST(Render, TraceImageFindsSpheres)
{
    // A single large sphere in front of the camera must be hit by
    // central rays and shade them.
    std::vector<Sphere> scene = {{Vec3{0, 0, 0}, 0.5, 0.0}};
    std::vector<float> image;
    const auto work = traceImage(scene, 32, 1, &image);
    ASSERT_EQ(work.size(), 32u * 32);
    EXPECT_GT(image[16 * 32 + 16], 0.0f) << "center ray hits";
    EXPECT_EQ(image[0], 0.0f) << "corner ray misses";
    // Every pixel performed at least one intersection test.
    for (const auto w : work)
        EXPECT_GE(w, 1u);
}

TEST(Render, ReflectiveScenesCostMoreTests)
{
    auto scene = randomScene(32, 21);
    for (auto& s : scene)
        s.reflect = 0.0;
    const auto flat = traceImage(scene, 32, 3, nullptr);
    for (auto& s : scene)
        s.reflect = 0.9;
    const auto shiny = traceImage(scene, 32, 3, nullptr);
    const auto sum = [](const std::vector<std::uint32_t>& v) {
        return std::accumulate(v.begin(), v.end(), 0ull);
    };
    EXPECT_GT(sum(shiny), sum(flat));
}

// ---------------- bayes ----------------

TEST(Bayes, TreeIsWellFormed)
{
    const CliqueTree t = randomTree(100, 12, 31);
    EXPECT_EQ(t.cliques.size(), 100u);
    EXPECT_EQ(t.cliques[0].parent, -1);
    for (std::size_t c = 1; c < t.cliques.size(); ++c) {
        const int par = t.cliques[c].parent;
        ASSERT_GE(par, 0);
        ASSERT_LT(par, static_cast<int>(c)) << "topological parents";
        const auto& kids = t.cliques[par].children;
        EXPECT_NE(std::find(kids.begin(), kids.end(),
                            static_cast<int>(c)),
                  kids.end());
    }
}

TEST(Bayes, PropagationYieldsPositivePartition)
{
    CliqueTree t = randomTree(50, 10, 32);
    const double z = propagate(t);
    EXPECT_GT(z, 0.0);
    EXPECT_TRUE(std::isfinite(z));
}

TEST(Bayes, PropagationCostMatchesTableSizes)
{
    const CliqueTree t = randomTree(30, 8, 33);
    std::uint64_t expect = 0;
    for (const auto& c : t.cliques)
        expect += 2 * c.table.size() * c.vars;
    EXPECT_EQ(propagationCost(t), expect);
}

TEST(Bayes, SkewedCliqueSizes)
{
    const CliqueTree t = randomTree(400, 14, 34);
    std::size_t small = 0, large = 0;
    for (const auto& c : t.cliques) {
        if (c.vars <= 4)
            ++small;
        if (c.vars >= 10)
            ++large;
    }
    EXPECT_GT(small, 200u) << "mostly small cliques";
    EXPECT_GT(large, 5u) << "a few large cliques";
    EXPECT_LT(large, 100u);
}

// ---------------- protein ----------------

TEST(Protein, HelixTreeShape)
{
    const ProteinTree t = helixTree(16, 1000, 41);
    // 16 leaves -> 31 nodes in a binary merge hierarchy.
    EXPECT_EQ(t.nodes.size(), 31u);
    int leaves = 0;
    for (const auto& nd : t.nodes)
        if (nd.children.empty())
            ++leaves;
    EXPECT_EQ(leaves, 16);
    EXPECT_GT(t.totalWork(), 0u);
}

TEST(Protein, StaticGroupsCoverAllProcs)
{
    const ProteinTree t = helixTree(16, 1000, 42);
    const auto groups = staticGroups(t, 32);
    EXPECT_EQ(groups.size(), t.nodes[0].children.size());
    int total = 0;
    for (const int g : groups) {
        EXPECT_GE(g, 1);
        total += g;
    }
    EXPECT_EQ(total, 32);
}

TEST(Protein, MakespanShrinksWithProcessors)
{
    const ProteinTree t = helixTree(32, 5000, 43);
    EXPECT_GT(criticalPathMakespan(t, 4),
              criticalPathMakespan(t, 64));
}
