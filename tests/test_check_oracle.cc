/**
 * @file
 * Unit tests for the SC data-value oracle: a correct protocol produces
 * zero violations on handcrafted sharing patterns, the cadence
 * validateCoherence() sweep runs, and (when mutation hooks are
 * compiled in) a deliberately broken invalidation is detected at the
 * exact store that skipped it.
 */

#include <gtest/gtest.h>

#include "check/oracle.hh"
#include "sim/machine.hh"

using namespace ccnuma;

namespace {

sim::MachineConfig
smallConfig(int procs)
{
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(procs);
    cfg.cacheBytes = 64u << 10;
    cfg.check.validateEvery = 64;
    return cfg;
}

} // namespace

TEST(ScOracle, CleanSharingPatternHasNoViolations)
{
    sim::MachineConfig cfg = smallConfig(4);
    sim::Machine m(cfg);
    const sim::Addr shared = m.alloc(8 * cfg.lineBytes);
    const sim::BarrierId bar = m.barrierCreate();

    check::ScOracle oracle(m.mem());
    m.mem().attachCommitObserver(&oracle);

    // Several rounds of everyone reading every shared line, then one
    // writer updating them: exercises fills, upgrades, invalidation
    // fan-outs and 3-hop dirty misses.
    m.run([&](sim::Cpu& cpu) -> sim::Task {
        for (int round = 0; round < 6; ++round) {
            for (int i = 0; i < 8; ++i)
                cpu.read(shared + static_cast<sim::Addr>(i) *
                                      cfg.lineBytes);
            co_await cpu.barrier(bar);
            if (cpu.id() == round % cpu.nprocs())
                for (int i = 0; i < 8; ++i)
                    cpu.write(shared + static_cast<sim::Addr>(i) *
                                           cfg.lineBytes);
            co_await cpu.barrier(bar);
            co_await cpu.checkpoint();
        }
        co_return;
    });

    EXPECT_FALSE(oracle.failed())
        << oracle.violations().front().what;
    EXPECT_GT(oracle.commits(), 0u);
    EXPECT_GT(oracle.loadsChecked(), 0u);
    EXPECT_GT(oracle.validations(), 0u)
        << "cadence validateCoherence() never ran";
    EXPECT_TRUE(m.mem().validateCoherence().empty());
}

TEST(ScOracle, CountsCommitsAndCheckedLoads)
{
    sim::MachineConfig cfg = smallConfig(2);
    cfg.check.validateEvery = 0; // cadence off
    sim::Machine m(cfg);
    const sim::Addr line = m.allocLine();

    check::ScOracle oracle(m.mem());
    m.mem().attachCommitObserver(&oracle);
    m.run([&](sim::Cpu& cpu) -> sim::Task {
        if (cpu.id() == 0) {
            cpu.write(line);
            cpu.read(line);
            cpu.read(line);
        }
        co_return;
    });

    EXPECT_EQ(oracle.commits(), 3u);
    EXPECT_EQ(oracle.loadsChecked(), 2u);
    EXPECT_EQ(oracle.validations(), 0u);
    EXPECT_FALSE(oracle.failed());
}

#ifdef CCNUMA_CHECK_MUTATE
TEST(ScOracle, SkippedInvalidationIsCaughtAtTheStore)
{
    // Minimal witness shape: both processors cache a line Shared, then
    // one writes it. The broken protocol spares the other sharer, and
    // the oracle's single-writer check fails at that very store.
    sim::MachineConfig cfg = smallConfig(2);
    cfg.check.mutation = sim::CheckMutation::SkipInvalidation;
    sim::Machine m(cfg);
    const sim::Addr line = m.allocLine();
    const sim::BarrierId bar = m.barrierCreate();

    check::ScOracle oracle(m.mem());
    m.mem().attachCommitObserver(&oracle);
    m.run([&](sim::Cpu& cpu) -> sim::Task {
        cpu.read(line);
        co_await cpu.barrier(bar);
        if (cpu.id() == 0)
            cpu.write(line);
        co_await cpu.barrier(bar);
        if (cpu.id() == 1)
            cpu.read(line); // stale hit on the spared copy
        co_return;
    });

    ASSERT_TRUE(oracle.failed());
    EXPECT_NE(oracle.violations().front().what.find("single-writer"),
              std::string::npos)
        << oracle.violations().front().what;
    // The stale copy is also structurally visible to the sweep.
    EXPECT_FALSE(m.mem().validateCoherence().empty());
}
#else
TEST(ScOracle, SkippedInvalidationIsCaughtAtTheStore)
{
    GTEST_SKIP() << "built with CCNUMA_CHECK_MUTATE=OFF";
}
#endif

TEST(ScOracle, DetachedObserverChangesNothing)
{
    // The commit hooks must be purely observational: identical final
    // times with and without an oracle attached.
    auto run = [](bool attach) {
        sim::MachineConfig cfg = smallConfig(4);
        sim::Machine m(cfg);
        const sim::Addr shared = m.alloc(16 * cfg.lineBytes);
        check::ScOracle oracle(m.mem());
        if (attach)
            m.mem().attachCommitObserver(&oracle);
        const sim::RunResult r =
            m.run([&](sim::Cpu& cpu) -> sim::Task {
                for (int i = 0; i < 64; ++i) {
                    cpu.read(shared +
                             static_cast<sim::Addr>(i % 16) *
                                 cfg.lineBytes);
                    cpu.write(shared +
                              static_cast<sim::Addr>((i * 7) % 16) *
                                  cfg.lineBytes);
                    if (i % 8 == 0)
                        co_await cpu.checkpoint();
                }
                co_return;
            });
        return r.time;
    };
    EXPECT_EQ(run(false), run(true));
}
