/**
 * @file
 * Unit tests for the page table: placement policies, manual placement,
 * and the dampened heavy-hitter migration policy.
 */

#include <gtest/gtest.h>

#include "sim/pagetable.hh"

using namespace ccnuma::sim;

namespace {

MachineConfig
cfgWith(Placement pl, bool mig = false, std::uint32_t thresh = 8)
{
    MachineConfig cfg;
    cfg.placement = pl;
    cfg.pageMigration = mig;
    cfg.migrationThreshold = thresh;
    return cfg;
}

constexpr std::uint64_t kPage = 16384;

} // namespace

TEST(PageTable, FirstTouchHomesAtToucher)
{
    PageTable pt(cfgWith(Placement::FirstTouch), 8);
    EXPECT_EQ(pt.home(0, 3), 3);
    EXPECT_EQ(pt.home(100, 5), 3) << "same page keeps its first home";
    EXPECT_EQ(pt.home(kPage, 5), 5) << "next page";
}

TEST(PageTable, RoundRobinCyclesNodes)
{
    PageTable pt(cfgWith(Placement::RoundRobin), 4);
    EXPECT_EQ(pt.home(0 * kPage, 2), 0);
    EXPECT_EQ(pt.home(1 * kPage, 2), 1);
    EXPECT_EQ(pt.home(2 * kPage, 2), 2);
    EXPECT_EQ(pt.home(3 * kPage, 2), 3);
    EXPECT_EQ(pt.home(4 * kPage, 2), 0);
}

TEST(PageTable, ExplicitPlacementWinsAndFallsBackToFirstTouch)
{
    PageTable pt(cfgWith(Placement::Explicit), 8);
    pt.place(0, 2 * kPage, 6);
    EXPECT_EQ(pt.home(0, 1), 6);
    EXPECT_EQ(pt.home(kPage + 5, 1), 6);
    EXPECT_EQ(pt.home(2 * kPage, 1), 1) << "unplaced page: first touch";
}

TEST(PageTable, PlaceBlockedDistributesInOrder)
{
    PageTable pt(cfgWith(Placement::Explicit), 8);
    pt.placeBlocked(0, 4 * kPage, {7, 5, 3, 1});
    EXPECT_EQ(pt.home(0 * kPage, 0), 7);
    EXPECT_EQ(pt.home(1 * kPage, 0), 5);
    EXPECT_EQ(pt.home(2 * kPage, 0), 3);
    EXPECT_EQ(pt.home(3 * kPage, 0), 1);
}

TEST(PageTable, HintsIgnoredUnderRoundRobin)
{
    PageTable pt(cfgWith(Placement::RoundRobin), 4);
    pt.place(0, kPage, 3); // should be a no-op
    EXPECT_EQ(pt.home(0, 1), 0) << "round-robin starts at node 0";
}

TEST(PageTable, MigrationAfterThresholdRemoteAccesses)
{
    PageTable pt(cfgWith(Placement::FirstTouch, true, 8), 8);
    ASSERT_EQ(pt.home(0, 0), 0);
    bool migrated = false;
    for (int i = 0; i < 20 && !migrated; ++i)
        migrated = pt.noteAccess(0, 2);
    EXPECT_TRUE(migrated);
    EXPECT_EQ(pt.home(0, 5), 2) << "page now homed at the hot accessor";
    EXPECT_EQ(pt.totalMigrations(), 1u);
}

TEST(PageTable, MigrationDampenedToOnePerPage)
{
    PageTable pt(cfgWith(Placement::FirstTouch, true, 4), 8);
    pt.home(0, 0);
    while (!pt.noteAccess(0, 2)) {
    }
    // Hammer from another node: must not migrate again.
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(pt.noteAccess(0, 3));
    EXPECT_EQ(pt.totalMigrations(), 1u);
}

TEST(PageTable, HomeAccessesDecayChallenger)
{
    PageTable pt(cfgWith(Placement::FirstTouch, true, 4), 8);
    pt.home(0, 0);
    // Alternate remote and home accesses: score never reaches the
    // threshold.
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(pt.noteAccess(0, 2));
        EXPECT_FALSE(pt.noteAccess(0, 0));
        EXPECT_FALSE(pt.noteAccess(0, 0));
    }
    EXPECT_EQ(pt.totalMigrations(), 0u);
}

TEST(PageTable, CompetingChallengersDisplaceEachOther)
{
    PageTable pt(cfgWith(Placement::FirstTouch, true, 16), 8);
    pt.home(0, 0);
    // Two remote nodes alternating: heavy-hitter counter oscillates,
    // no migration (neither is actually dominant).
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(pt.noteAccess(0, 2));
        EXPECT_FALSE(pt.noteAccess(0, 3));
    }
    EXPECT_EQ(pt.totalMigrations(), 0u);
}

TEST(PageTable, NoMigrationWhenDisabled)
{
    PageTable pt(cfgWith(Placement::FirstTouch, false, 2), 8);
    pt.home(0, 0);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(pt.noteAccess(0, 2));
}

TEST(PageTable, PagesPerNodeCountsPlacedPages)
{
    PageTable pt(cfgWith(Placement::Explicit), 4);
    pt.place(0, 3 * kPage, 1);
    pt.place(3 * kPage, kPage, 2);
    pt.home(10 * kPage, 3); // first touch
    const auto counts = pt.pagesPerNode();
    EXPECT_EQ(counts[1], 3u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(counts[0], 0u);
}
