/**
 * @file
 * Unit tests for the set-associative L2 cache model.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

using namespace ccnuma::sim;

namespace {
constexpr std::uint32_t kLine = 128;
} // namespace

TEST(Cache, MissThenHit)
{
    Cache c(8 << 10, 2, kLine);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000 + kLine - 1, false).hit) <<
        "same line, different offset";
    EXPECT_FALSE(c.access(0x1000 + kLine, false).hit) << "next line";
}

TEST(Cache, WriteAllocatesDirty)
{
    Cache c(8 << 10, 2, kLine);
    EXPECT_FALSE(c.access(0x2000, true).hit);
    EXPECT_EQ(c.probe(0x2000), LineState::Dirty);
}

TEST(Cache, ReadAllocatesShared)
{
    Cache c(8 << 10, 2, kLine);
    c.access(0x2000, false);
    EXPECT_EQ(c.probe(0x2000), LineState::Shared);
}

TEST(Cache, WriteHitOnSharedUpgrades)
{
    Cache c(8 << 10, 2, kLine);
    c.access(0x2000, false);
    const CacheResult r = c.access(0x2000, true);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.upgrade);
    EXPECT_EQ(c.probe(0x2000), LineState::Dirty);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way: lines mapping to the same set evict the least recently used.
    Cache c(8 << 10, 2, kLine);
    const std::uint64_t set_stride = c.numSets() * kLine;
    const Addr a = 0x0, b = a + set_stride, d = a + 2 * set_stride;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false); // refresh a; b is now LRU
    const CacheResult r = c.access(d, false);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.victim, b);
    EXPECT_EQ(r.victimState, LineState::Shared);
    EXPECT_EQ(c.probe(a), LineState::Shared);
    EXPECT_EQ(c.probe(b), LineState::Invalid);
}

TEST(Cache, DirtyVictimReported)
{
    Cache c(8 << 10, 2, kLine);
    const std::uint64_t set_stride = c.numSets() * kLine;
    c.access(0x0, true);
    c.access(set_stride, false);
    const CacheResult r = c.access(2 * set_stride, false);
    EXPECT_EQ(r.victim, 0u);
    EXPECT_EQ(r.victimState, LineState::Dirty);
}

TEST(Cache, InvalidateAndDowngrade)
{
    Cache c(8 << 10, 2, kLine);
    c.access(0x4000, true);
    c.downgrade(0x4000);
    EXPECT_EQ(c.probe(0x4000), LineState::Shared);
    EXPECT_EQ(c.invalidate(0x4000), LineState::Shared);
    EXPECT_EQ(c.probe(0x4000), LineState::Invalid);
    EXPECT_EQ(c.invalidate(0x4000), LineState::Invalid);
}

TEST(Cache, CapacityWorkingSetBehaviour)
{
    // A working set equal to capacity fits (fully-assoc would; 2-way LRU
    // with sequential fill also does since each set sees its own lines in
    // order); 2x capacity thrashes.
    const std::uint64_t cap = 64 << 10;
    Cache c(cap, 2, kLine);
    const int lines = static_cast<int>(cap / kLine);
    for (int i = 0; i < lines; ++i)
        c.access(static_cast<Addr>(i) * kLine, false);
    EXPECT_EQ(c.residentLines(), static_cast<std::uint64_t>(lines));
    int hits = 0;
    for (int i = 0; i < lines; ++i)
        hits += c.access(static_cast<Addr>(i) * kLine, false).hit;
    EXPECT_EQ(hits, lines) << "capacity-sized set should fully hit";

    c.reset();
    for (int rep = 0; rep < 2; ++rep)
        for (int i = 0; i < 2 * lines; ++i)
            c.access(static_cast<Addr>(i) * kLine, false);
    hits = 0;
    for (int i = 0; i < 2 * lines; ++i)
        hits += c.access(static_cast<Addr>(i) * kLine, false).hit;
    EXPECT_EQ(hits, 0) << "2x working set under LRU sequential scan "
                          "should thrash completely";
}

TEST(Cache, InstallIdempotentAndStateMerge)
{
    Cache c(8 << 10, 2, kLine);
    c.install(0x8000, LineState::Shared);
    EXPECT_EQ(c.probe(0x8000), LineState::Shared);
    const CacheResult r = c.install(0x8000, LineState::Dirty);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(c.probe(0x8000), LineState::Dirty);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(100, 2, 128), std::invalid_argument);
    EXPECT_THROW(Cache(8 << 10, 2, 100), std::invalid_argument);
}

TEST(Cache, ResidentCountTracksEvictions)
{
    Cache c(2 * kLine, 2, kLine); // one set, two ways
    c.access(0, false);
    c.access(kLine, false);
    c.access(2 * kLine, false); // evicts
    EXPECT_EQ(c.residentLines(), 2u);
}
