/**
 * @file
 * Schema and determinism tests for the BENCH_sim.json document emitted
 * by the ccnuma_bench self-benchmark harness.
 *
 * CI and the perf-trajectory tooling parse this file, so its shape is a
 * contract: strict JSON (the repo's own check::json parser), required
 * keys on every case entry (app, procs, opsPerSec, wallMs) and on the
 * meta entry (gitDescribe, schemaVersion, aggOpsPerSec), and key sets
 * that are stable across runs. Wall-clock values vary run to run;
 * everything simulated must not.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/selfbench/selfbench.hh"
#include "check/json.hh"
#include "core/metrics.hh"

namespace {

namespace sb = ccnuma::bench::selfbench;
namespace json = ccnuma::check::json;

/// A tiny grid that simulates in milliseconds.
std::vector<sb::BenchCase>
tinyGrid()
{
    return {
        {"fft", 1u << 10, 4},
        {"water-nsq", 64, 4},
    };
}

struct Doc {
    json::Value root;
    std::string path;
};

Doc
emitToTempFile(const sb::GridResult& r, const std::string& name)
{
    Doc d;
    d.path = std::string(::testing::TempDir()) + name;
    ccnuma::core::MetricsSink sink(d.path);
    sb::emit(sink, r, "tiny", "test-deadbeef");
    EXPECT_TRUE(sink.write());
    const json::ParseResult pr = json::parseFile(d.path);
    EXPECT_TRUE(pr.ok) << pr.error;
    d.root = pr.root;
    return d;
}

const json::Value*
findRun(const json::Value& root, const std::string& label)
{
    const json::Value* runs = root.find("runs");
    if (!runs || !runs->isArray())
        return nullptr;
    for (const json::Value& run : runs->arr) {
        const json::Value* l = run.find("label");
        if (l && l->isString() && l->str == label)
            return &run;
    }
    return nullptr;
}

std::set<std::string>
keysOf(const json::Value& obj)
{
    std::set<std::string> keys;
    for (const auto& [k, v] : obj.obj)
        keys.insert(k);
    return keys;
}

TEST(SelfbenchSchema, RequiredKeysPresentAndTyped)
{
    const sb::GridResult r = sb::runGrid(tinyGrid());
    const Doc d = emitToTempFile(r, "bench_schema.json");

    // Every case entry: text app, counts procs/size/simMemOps/
    // simCycles, scalars wallMs/opsPerSec.
    for (const sb::CaseResult& c : r.cases) {
        const json::Value* run = findRun(d.root, c.bc.label());
        ASSERT_NE(run, nullptr) << c.bc.label();
        const json::Value* app = run->find("app");
        ASSERT_NE(app, nullptr);
        EXPECT_TRUE(app->isString());
        EXPECT_EQ(app->str, c.bc.app);
        for (const char* key :
             {"procs", "size", "simMemOps", "simCycles"}) {
            const json::Value* v = run->find(key);
            ASSERT_NE(v, nullptr) << key;
            EXPECT_TRUE(v->isNumber()) << key;
        }
        ASSERT_NE(run->find("wallMs"), nullptr);
        ASSERT_NE(run->find("opsPerSec"), nullptr);
        EXPECT_EQ(run->find("procs")->asU64(),
                  static_cast<std::uint64_t>(c.bc.procs));
        EXPECT_EQ(run->find("simMemOps")->asU64(), c.simMemOps);
        EXPECT_GT(run->find("opsPerSec")->asDouble(), 0.0);
    }

    // Meta entry.
    const json::Value* meta = findRun(d.root, "selfbench/meta");
    ASSERT_NE(meta, nullptr);
    const json::Value* git = meta->find("gitDescribe");
    ASSERT_NE(git, nullptr);
    EXPECT_TRUE(git->isString());
    EXPECT_EQ(git->str, "test-deadbeef");
    const json::Value* ver = meta->find("schemaVersion");
    ASSERT_NE(ver, nullptr);
    EXPECT_EQ(ver->asU64(), 1u);
    for (const char* key :
         {"grid", "totalMemOps", "totalWallMs", "aggOpsPerSec"}) {
        EXPECT_NE(meta->find(key), nullptr) << key;
    }
    EXPECT_GT(meta->find("aggOpsPerSec")->asDouble(), 0.0);

    std::remove(d.path.c_str());
}

TEST(SelfbenchSchema, StableAcrossRuns)
{
    // Two independent runs: identical labels, identical key sets per
    // entry, and identical simulated counters. Only wall-clock derived
    // numbers may differ.
    const sb::GridResult r1 = sb::runGrid(tinyGrid());
    const sb::GridResult r2 = sb::runGrid(tinyGrid());
    const Doc d1 = emitToTempFile(r1, "bench_run1.json");
    const Doc d2 = emitToTempFile(r2, "bench_run2.json");

    const json::Value* runs1 = d1.root.find("runs");
    const json::Value* runs2 = d2.root.find("runs");
    ASSERT_NE(runs1, nullptr);
    ASSERT_NE(runs2, nullptr);
    ASSERT_EQ(runs1->arr.size(), runs2->arr.size());
    for (std::size_t i = 0; i < runs1->arr.size(); ++i) {
        const json::Value& a = runs1->arr[i];
        const json::Value& b = runs2->arr[i];
        EXPECT_EQ(a.find("label")->str, b.find("label")->str);
        EXPECT_EQ(keysOf(a), keysOf(b)) << a.find("label")->str;
        for (const char* key : {"simMemOps", "simCycles"}) {
            const json::Value* va = a.find(key);
            const json::Value* vb = b.find(key);
            if (va || vb) {
                ASSERT_NE(va, nullptr);
                ASSERT_NE(vb, nullptr);
                EXPECT_EQ(va->asU64(), vb->asU64())
                    << a.find("label")->str << " " << key;
            }
        }
    }
    EXPECT_EQ(r1.totalMemOps, r2.totalMemOps);

    std::remove(d1.path.c_str());
    std::remove(d2.path.c_str());
}

TEST(SelfbenchSchema, HistoryAccumulatesAcrossRewrites)
{
    // Emitting to the same path repeatedly must append one history
    // entry per run and carry every prior entry forward verbatim.
    const sb::GridResult r = sb::runGrid(tinyGrid());
    const std::string path =
        std::string(::testing::TempDir()) + "bench_history.json";
    std::remove(path.c_str());

    for (std::size_t run = 0; run < 3; ++run) {
        ccnuma::core::MetricsSink sink(path);
        sb::emit(sink, r, "tiny", "rev-" + std::to_string(run));
        const std::size_t idx = sb::appendHistory(
            sink, path, r, "tiny", "rev-" + std::to_string(run),
            "2026-08-0" + std::to_string(run + 1));
        EXPECT_EQ(idx, run) << "prior entries kept";
        ASSERT_TRUE(sink.write());
    }

    const json::ParseResult pr = json::parseFile(path);
    ASSERT_TRUE(pr.ok) << pr.error;
    for (std::size_t run = 0; run < 3; ++run) {
        const json::Value* h =
            findRun(pr.root, "history/" + std::to_string(run));
        ASSERT_NE(h, nullptr) << run;
        EXPECT_EQ(h->find("gitDescribe")->str,
                  "rev-" + std::to_string(run));
        EXPECT_EQ(h->find("date")->str,
                  "2026-08-0" + std::to_string(run + 1));
        EXPECT_EQ(h->find("grid")->str, "tiny");
        EXPECT_EQ(h->find("totalMemOps")->asU64(), r.totalMemOps);
        EXPECT_NE(h->find("aggOpsPerSec"), nullptr);
    }
    EXPECT_EQ(findRun(pr.root, "history/3"), nullptr);
    // The per-case and meta entries are still there alongside.
    EXPECT_NE(findRun(pr.root, "selfbench/meta"), nullptr);

    // A fresh path starts the history at index 0.
    ccnuma::core::MetricsSink fresh(path + ".fresh");
    sb::emit(fresh, r, "tiny", "rev-x");
    EXPECT_EQ(sb::appendHistory(fresh, path + ".nope", r, "tiny",
                                "rev-x", "2026-08-08"),
              0u);

    std::remove(path.c_str());
}

TEST(SelfbenchSchema, HistoryDedupesByGitRevision)
{
    // Re-benchmarking the same checkout replaces its history entry
    // instead of appending a duplicate: the trajectory stays one
    // entry per revision, round-tripped through the emitted file.
    const sb::GridResult r = sb::runGrid(tinyGrid());
    const std::string path =
        std::string(::testing::TempDir()) + "bench_dedupe.json";
    std::remove(path.c_str());

    const auto emitRun = [&](const std::string& rev,
                             const std::string& date) {
        ccnuma::core::MetricsSink sink(path);
        sb::emit(sink, r, "tiny", rev);
        const std::size_t idx =
            sb::appendHistory(sink, path, r, "tiny", rev, date);
        EXPECT_TRUE(sink.write());
        return idx;
    };

    EXPECT_EQ(emitRun("rev-a", "2026-08-01"), 0u);
    EXPECT_EQ(emitRun("rev-b", "2026-08-02"), 1u);
    // Same revision again: rev-b's old entry is dropped, the new
    // measurement lands at the same index.
    EXPECT_EQ(emitRun("rev-b", "2026-08-03"), 1u);

    const json::ParseResult pr = json::parseFile(path);
    ASSERT_TRUE(pr.ok) << pr.error;
    const json::Value* h0 = findRun(pr.root, "history/0");
    const json::Value* h1 = findRun(pr.root, "history/1");
    ASSERT_NE(h0, nullptr);
    ASSERT_NE(h1, nullptr);
    EXPECT_EQ(findRun(pr.root, "history/2"), nullptr);
    EXPECT_EQ(h0->find("gitDescribe")->str, "rev-a");
    EXPECT_EQ(h0->find("date")->str, "2026-08-01");
    EXPECT_EQ(h1->find("gitDescribe")->str, "rev-b");
    EXPECT_EQ(h1->find("date")->str, "2026-08-03");

    // An unrelated revision still appends after the dedupe.
    EXPECT_EQ(emitRun("rev-c", "2026-08-04"), 2u);

    std::remove(path.c_str());
}

TEST(SelfbenchSchema, CompareBaselineRoundTrip)
{
    // A grid compared against its own emitted baseline is ratio ~1 and
    // passes any sane threshold; a corrupt file is a clean failure.
    const sb::GridResult r = sb::runGrid(tinyGrid());
    const Doc d = emitToTempFile(r, "bench_baseline.json");

    const sb::CompareResult same =
        sb::compareBaseline(d.path, r, 0.75);
    EXPECT_TRUE(same.ok) << same.message;
    EXPECT_NEAR(same.ratio, 1.0, 1e-9);

    const sb::CompareResult impossible =
        sb::compareBaseline(d.path, r, 1000.0);
    EXPECT_FALSE(impossible.ok);

    const sb::CompareResult missing =
        sb::compareBaseline(d.path + ".nope", r, 0.75);
    EXPECT_FALSE(missing.ok);
    EXPECT_FALSE(missing.message.empty());

    std::remove(d.path.c_str());
}

} // namespace
