/**
 * @file
 * Trace record/replay differential suite: a trace recorded from an
 * application and replayed through apps::TraceReplayApp must reproduce
 * the recording run bit-for-bit — the same RunResult fields and the
 * same MetricsSink JSON bytes. Also covers the text format round trip,
 * strict-parse error reporting, cross-machine replay, and the
 * semantic-failure path (a well-formed trace whose op arguments are
 * invalid throws mid-simulation, not at parse time).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "apps/registry.hh"
#include "apps/trace.hh"
#include "bit_identity.hh"
#include "core/metrics.hh"
#include "sim/config.hh"
#include "sim/machine.hh"

namespace {

using namespace ccnuma;

std::string
metricsJson(const sim::MachineConfig& cfg, const sim::RunResult& r)
{
    core::MetricsSink sink = core::MetricsSink::inMemory();
    sink.setMachine(cfg);
    sink.add("run", r);
    return sink.str();
}

/// Record `name` at `size` on `cfg`, replay the trace on an identically
/// configured fresh machine, and demand byte equality end to end.
void
expectReplayExact(const std::string& name, std::uint64_t size,
                  sim::MachineConfig cfg)
{
    SCOPED_TRACE(name);
    auto app = apps::makeApp(name, size);
    const apps::RecordedTrace rec = recordTrace(cfg, *app);

    EXPECT_EQ(rec.trace.procs, cfg.numProcs);
    EXPECT_GT(rec.trace.totalOps(), 0u);

    apps::TraceReplayApp replay(rec.trace);
    EXPECT_EQ(replay.name(), "trace:" + name);
    sim::Machine m(cfg);
    replay.setup(m);
    const sim::RunResult r = m.run(replay.program());

    testutil::expectIdentical(rec.run, r, "replay of " + name);
    EXPECT_EQ(metricsJson(cfg, rec.run), metricsJson(cfg, r));
}

TEST(TraceReplay, FftExact)
{
    expectReplayExact("fft", 1u << 10, sim::MachineConfig::origin2000(4));
}

TEST(TraceReplay, OceanExact)
{
    expectReplayExact("ocean", 66, sim::MachineConfig::origin2000(4));
}

// Lock-heavy app: exercises Acquire/Release/Rmw/FetchOp replay.
TEST(TraceReplay, RaytraceExact)
{
    expectReplayExact("raytrace", 32, sim::MachineConfig::origin2000(4));
}

// Timing-VARIANT app (task stealing): unreplayable by rerunning the
// program under another engine, but a recorded trace bakes the dynamic
// decisions into the streams, so trace replay is still exact. This is
// the case that distinguishes the recorder from the scout engine.
TEST(TraceReplay, TimingVariantAppExact)
{
    ASSERT_FALSE(apps::timingInvariant("volrend"));
    expectReplayExact("volrend", 32, sim::MachineConfig::origin2000(4));
}

TEST(TraceReplay, ReplayIsDeterministicAcrossRuns)
{
    auto app = apps::makeApp("radix", 1u << 12);
    const sim::MachineConfig cfg = sim::MachineConfig::origin2000(8);
    const apps::RecordedTrace rec = recordTrace(cfg, *app);

    std::string first;
    for (int i = 0; i < 2; ++i) {
        apps::TraceReplayApp replay(rec.trace);
        sim::Machine m(cfg);
        replay.setup(m);
        const std::string j = metricsJson(cfg, m.run(replay.program()));
        if (i == 0)
            first = j;
        else
            EXPECT_EQ(first, j);
    }
    EXPECT_EQ(first, metricsJson(cfg, rec.run));
}

// A trace is a machine-independent workload description: replaying on
// a different protocol/directory must run (different numbers, same
// totals of issued operations).
TEST(TraceReplay, ReplayOnDifferentMachine)
{
    auto app = apps::makeApp("fft", 1u << 10);
    sim::MachineConfig rec_cfg = sim::MachineConfig::origin2000(4);
    const apps::RecordedTrace rec = recordTrace(rec_cfg, *app);

    sim::MachineConfig other = sim::MachineConfig::origin2000(4);
    ASSERT_TRUE(other.protocol.parse("moesi"));
    ASSERT_TRUE(other.dirFormat.parse("coarse:4"));
    apps::TraceReplayApp replay(rec.trace);
    sim::Machine m(other);
    replay.setup(m);
    const sim::RunResult r = m.run(replay.program());

    const auto a = rec.run.totals();
    const auto b = r.totals();
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.barriersPassed, b.barriersPassed);
    EXPECT_EQ(a.lockAcquires, b.lockAcquires);
}

TEST(TraceReplay, ProcsMismatchThrows)
{
    auto app = apps::makeApp("fft", 1u << 10);
    const apps::RecordedTrace rec =
        recordTrace(sim::MachineConfig::origin2000(4), *app);
    apps::TraceReplayApp replay(rec.trace);
    sim::Machine m(sim::MachineConfig::origin2000(8));
    EXPECT_THROW(replay.setup(m), std::invalid_argument);
}

TEST(TraceFormat, SerializeParseRoundTrip)
{
    auto app = apps::makeApp("ocean", 66);
    const apps::RecordedTrace rec =
        recordTrace(sim::MachineConfig::origin2000(4), *app);

    const std::string text = rec.trace.serialize();
    const apps::TraceParseResult parsed = apps::parseTrace(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.trace.app, rec.trace.app);
    EXPECT_EQ(parsed.trace.procs, rec.trace.procs);
    EXPECT_EQ(parsed.trace.setup, rec.trace.setup);
    EXPECT_EQ(parsed.trace.ops, rec.trace.ops);
    EXPECT_EQ(parsed.trace.serialize(), text);
    EXPECT_EQ(parsed.trace.hashHex(), rec.trace.hashHex());
}

TEST(TraceFormat, HashChangesWithContent)
{
    apps::Trace t;
    t.procs = 1;
    t.ops.resize(1);
    t.ops[0].push_back({sim::OpKind::Read, 1u << 20});
    const std::string h1 = t.hashHex();
    EXPECT_EQ(h1.size(), 16u);
    t.ops[0].push_back({sim::OpKind::Checkpoint, 0});
    EXPECT_NE(t.hashHex(), h1);
}

TEST(TraceFormat, ParseErrorsCarryLineNumbers)
{
    const auto expectError = [](const std::string& text,
                                const std::string& fragment) {
        SCOPED_TRACE(fragment);
        const apps::TraceParseResult r = apps::parseTrace(text);
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("line "), std::string::npos) << r.error;
        EXPECT_NE(r.error.find(fragment), std::string::npos) << r.error;
    };
    expectError("", "ccnuma-trace v1");
    expectError("ccnuma-trace v2\n", "ccnuma-trace v1");
    expectError("ccnuma-trace v1\nops 0 0\nend\n", "procs");
    expectError("ccnuma-trace v1\nprocs 0\n", "procs");
    expectError("ccnuma-trace v1\nprocs 1\nfrobnicate 3\n",
                "bad setup line");
    expectError("ccnuma-trace v1\nprocs 1\nalloc 64\n",
                "unexpected end of input");
    expectError("ccnuma-trace v1\nprocs 2\nops 1 0\nops 0 0\nend\n",
                "processor 0");
    expectError("ccnuma-trace v1\nprocs 1\nops 0 2\nr 64\n",
                "unexpected end of input");
    expectError("ccnuma-trace v1\nprocs 1\nops 0 1\nq 64\nend\n",
                "unknown op");
    expectError("ccnuma-trace v1\nprocs 1\nops 0 1\nr\nend\n",
                "needs one number");
    expectError("ccnuma-trace v1\nprocs 1\nops 0 1\ny 3\nend\n",
                "no argument");
    expectError("ccnuma-trace v1\nprocs 1\nops 0 0\n", "end");
    expectError("ccnuma-trace v1\nprocs 1\nops 0 0\nend\njunk\n",
                "trailing content");
}

// A parseable trace whose op arguments dangle (barrier index with no
// barrier) throws from inside the simulation — the layering the serve
// cache-poisoning regression depends on.
TEST(TraceFormat, DanglingBarrierIndexThrowsMidSim)
{
    const apps::TraceParseResult r = apps::parseTrace(
        "ccnuma-trace v1\nprocs 1\nalloc 4096\nops 0 2\nr 1048576\nB "
        "7\nend\n");
    ASSERT_TRUE(r.ok) << r.error;
    apps::TraceReplayApp replay(r.trace);
    sim::Machine m(sim::MachineConfig::origin2000(1));
    replay.setup(m);
    EXPECT_THROW(m.run(replay.program()), std::out_of_range);
}

// Hand-written minimal trace: the format is writable by humans and
// other tools, not only by the recorder.
TEST(TraceFormat, HandWrittenTraceRuns)
{
    const apps::TraceParseResult r = apps::parseTrace(
        "ccnuma-trace v1\n"
        "app hand\n"
        "procs 2\n"
        "alloc 8192\n"
        "barrier 2\n"
        "ops 0 4\n"
        "b 50\n"
        "w 1048576\n"
        "B 0\n"
        "r 1048704\n"
        "ops 1 4\n"
        "b 10\n"
        "w 1048704\n"
        "B 0\n"
        "r 1048576\n"
        "end\n");
    ASSERT_TRUE(r.ok) << r.error;
    apps::TraceReplayApp replay(r.trace);
    EXPECT_EQ(replay.name(), "trace:hand");
    sim::Machine m(sim::MachineConfig::origin2000(2));
    replay.setup(m);
    const sim::RunResult res = m.run(replay.program());
    const auto totals = res.totals();
    EXPECT_EQ(totals.loads, 2u);
    EXPECT_EQ(totals.stores, 2u);
    EXPECT_EQ(totals.barriersPassed, 2u);
}

} // namespace
