/**
 * @file
 * End-to-end protocol tests for ccnuma_serve over real loopback
 * sockets: request/response round trips, typed rejections that leave
 * the connection usable, admission control, result caching (hit on
 * repeat, no poisoning by failures), concurrent-client determinism,
 * and graceful shutdown draining in-flight work. Plus unit tests for
 * the single-flight LRU ResultCache and the wire parser.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hh"
#include "apps/trace.hh"
#include "check/json.hh"
#include "serve/cache.hh"
#include "serve/net.hh"
#include "serve/server.hh"
#include "serve/wire.hh"

namespace {

using namespace ccnuma;
namespace json = check::json;

/// One NDJSON client connection (send a line, await a line).
class TestClient
{
  public:
    explicit TestClient(int port)
        : fd_(serve::connectTcp("127.0.0.1", port)),
          reader_(fd_.get(), 64u << 20)
    {
    }

    void
    send(const std::string& line)
    {
        EXPECT_TRUE(serve::writeAll(fd_.get(), line + "\n"));
    }

    std::string
    recv()
    {
        std::string s;
        EXPECT_EQ(reader_.next(s), serve::ReadStatus::Line);
        return s;
    }

    std::string
    roundTrip(const std::string& line)
    {
        send(line);
        return recv();
    }

  private:
    serve::Fd fd_;
    serve::LineReader reader_;
};

json::Value
parseResponse(const std::string& line)
{
    const json::ParseResult r = json::parse(line);
    EXPECT_TRUE(r.ok) << r.error << " in: " << line;
    return r.root;
}

bool
isOk(const json::Value& resp)
{
    const json::Value* ok = resp.find("ok");
    return ok && ok->kind == json::Value::Kind::Bool && ok->boolean;
}

std::string
field(const json::Value& resp, const std::string& key)
{
    const json::Value* v = resp.find(key);
    return v && v->isString() ? v->str : "";
}

const std::string kStudyReq =
    R"({"id":"s1","type":"study","app":"fft","size":1024,"procs":[2]})";

/// A well-formed trace whose barrier index dangles: parses fine,
/// throws inside the simulation (see test_trace_replay.cc).
const std::string kPoisonTraceReq =
    R"({"id":"p1","type":"trace","trace":"ccnuma-trace v1\nprocs 1\nalloc 4096\nops 0 2\nr 1048576\nB 7\nend\n"})";

serve::ServerOptions
testOptions()
{
    serve::ServerOptions so;
    so.workers = 2;
    so.jobs = 2;
    return so;
}

TEST(Serve, PingRoundTrip)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());
    const json::Value resp =
        parseResponse(c.roundTrip(R"({"id":"a","type":"ping"})"));
    EXPECT_TRUE(isOk(resp));
    EXPECT_EQ(field(resp, "id"), "a");
    EXPECT_EQ(field(resp, "type"), "pong");
    server.stop();
}

TEST(Serve, StudyRoundTrip)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());
    const json::Value resp = parseResponse(c.roundTrip(kStudyReq));
    ASSERT_TRUE(isOk(resp)) << field(resp, "detail");
    EXPECT_EQ(field(resp, "id"), "s1");
    const json::Value* cached = resp.find("cached");
    ASSERT_NE(cached, nullptr);
    EXPECT_FALSE(cached->boolean);

    const json::Value* result = resp.find("result");
    ASSERT_NE(result, nullptr);
    const json::Value* runs = result->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->arr.size(), 1u);
    const json::Value& run = runs->arr[0];
    EXPECT_EQ(field(run, "label"), "fft P=2");
    EXPECT_GT(run.find("runCycles")->asU64(), 0u);
    EXPECT_GT(run.find("seqCycles")->asU64(), 0u);
    EXPECT_GT(run.find("speedup")->asDouble(), 0.0);
    ASSERT_NE(run.find("totals"), nullptr);
    EXPECT_GT(run.find("totals")->find("loads")->asU64(), 0u);
    server.stop();
}

TEST(Serve, TraceRoundTripMatchesRecordingRun)
{
    auto app = apps::makeApp("fft", 1024);
    const apps::RecordedTrace rec =
        recordTrace(sim::MachineConfig::origin2000(4), *app);

    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());
    std::string traceField;
    for (const char ch : rec.trace.serialize()) {
        if (ch == '\n')
            traceField += "\\n";
        else
            traceField += ch;
    }
    const json::Value resp = parseResponse(c.roundTrip(
        R"({"id":"t1","type":"trace","trace":")" + traceField + "\"}"));
    ASSERT_TRUE(isOk(resp)) << field(resp, "detail");

    // The replayed trace reproduces the recording run exactly.
    const json::Value& run = resp.find("result")->find("runs")->arr[0];
    EXPECT_EQ(field(run, "label"), "trace P=4");
    EXPECT_EQ(run.find("runCycles")->asU64(),
              static_cast<std::uint64_t>(rec.run.time));
    EXPECT_EQ(run.find("totals")->find("loads")->asU64(),
              rec.run.totals().loads);
    EXPECT_EQ(run.find("totals")->find("stores")->asU64(),
              rec.run.totals().stores);
    server.stop();
}

TEST(Serve, MalformedJsonGetsTypedErrorAndConnectionSurvives)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());

    const json::Value err = parseResponse(c.roundTrip("{not json"));
    EXPECT_FALSE(isOk(err));
    EXPECT_EQ(field(err, "error"), "bad-json");
    EXPECT_FALSE(field(err, "detail").empty());

    // Same connection, next request: still served.
    const json::Value pong =
        parseResponse(c.roundTrip(R"({"id":"b","type":"ping"})"));
    EXPECT_TRUE(isOk(pong));
    EXPECT_EQ(server.stats().badRequests, 1u);
    server.stop();
}

TEST(Serve, BadRequestsAreTypedAndSpecific)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());
    const auto expectBad = [&](const std::string& req,
                               const std::string& detailFragment) {
        SCOPED_TRACE(req);
        const json::Value r = parseResponse(c.roundTrip(req));
        EXPECT_FALSE(isOk(r));
        EXPECT_EQ(field(r, "error"), "bad-request");
        EXPECT_NE(field(r, "detail").find(detailFragment),
                  std::string::npos)
            << field(r, "detail");
    };
    expectBad(R"({"type":"ping"})", "id");
    expectBad(R"({"id":"x","type":"frob"})", "unknown type");
    expectBad(R"({"id":"x","type":"study","procs":[2]})", "app");
    expectBad(
        R"({"id":"x","type":"study","app":"nope","procs":[2]})",
        "unknown app");
    expectBad(R"({"id":"x","type":"study","app":"fft"})", "procs");
    expectBad(
        R"({"id":"x","type":"study","app":"fft","procs":[2],"protocol":"x"})",
        "protocol");
    expectBad(
        R"({"id":"x","type":"study","app":"fft","procs":[2],"zzz":1})",
        "unexpected field");
    expectBad(R"({"id":"x","type":"trace","trace":"bogus"})", "trace:");
    // An absurd declared op count must be a parse error, not an
    // attacker-triggered std::length_error that kills the daemon.
    expectBad(
        R"({"id":"x","type":"trace","trace":"ccnuma-trace v1\nprocs 1\nops 0 999999999999999999\nend\n"})",
        "trace:");
    // Out-of-range counts are rejected, not silently saturated to
    // 2^64-1 by strtoull.
    expectBad(
        R"({"id":"x","type":"study","app":"fft","size":99999999999999999999999,"procs":[2]})",
        "size");
    expectBad(
        R"({"id":"x","type":"study","app":"fft","procs":[2],"deadlineMs":99999999999999999999999})",
        "deadlineMs");
    // Duplicate keys are rejected by the strict parser.
    const json::Value dup = parseResponse(
        c.roundTrip(R"({"id":"x","id":"y","type":"ping"})"));
    EXPECT_FALSE(isOk(dup));
    EXPECT_EQ(field(dup, "error"), "bad-json");
    server.stop();
}

TEST(Serve, OversizedRequestRejectedConnectionSurvives)
{
    serve::ServerOptions so = testOptions();
    so.maxRequestBytes = 1024;
    serve::Server server(so);
    server.start();
    TestClient c(server.port());

    const json::Value err = parseResponse(
        c.roundTrip("{\"pad\":\"" + std::string(4096, 'x') + "\"}"));
    EXPECT_FALSE(isOk(err));
    EXPECT_EQ(field(err, "error"), "too-large");

    const json::Value pong =
        parseResponse(c.roundTrip(R"({"id":"b","type":"ping"})"));
    EXPECT_TRUE(isOk(pong));
    EXPECT_EQ(server.stats().rejectedTooLarge, 1u);
    server.stop();
}

TEST(Serve, RepeatServedFromCacheWithoutResimulation)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());

    const std::string first = c.roundTrip(kStudyReq);
    const std::string second = c.roundTrip(kStudyReq);
    const json::Value r1 = parseResponse(first);
    const json::Value r2 = parseResponse(second);
    ASSERT_TRUE(isOk(r1)) << field(r1, "detail");
    ASSERT_TRUE(isOk(r2));
    EXPECT_FALSE(r1.find("cached")->boolean);
    EXPECT_TRUE(r2.find("cached")->boolean);

    // Identical payload except the cached marker.
    const auto stripCached = [](std::string s) {
        const auto pos = s.find(",\"cached\":");
        const auto end = s.find(',', pos + 1);
        return s.erase(pos, end - pos);
    };
    EXPECT_EQ(stripCached(first), stripCached(second));

    const serve::ServerStats st = server.stats();
    EXPECT_EQ(st.served, 2u);
    EXPECT_EQ(st.cacheHits, 1u);
    EXPECT_EQ(st.simsRun, 1u) << "repeat must not re-simulate";
    server.stop();
}

TEST(Serve, EightConcurrentClientsBitIdenticalResponses)
{
    serve::ServerOptions so = testOptions();
    so.workers = 4;
    serve::Server server(so);
    server.start();

    constexpr int kClients = 8;
    std::vector<std::string> results(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            // Unique id per client: strip it before comparing.
            TestClient c(server.port());
            const std::string req =
                "{\"id\":\"c" + std::to_string(i) +
                R"(","type":"study","app":"ocean","size":66,"procs":[2,4]})";
            // One client computes (cached:false), the rest share the
            // flight (cached:true): compare the payload only.
            std::string resp = c.roundTrip(req);
            results[i] = resp.substr(resp.find("\"result\""));
        });
    for (auto& t : threads)
        t.join();

    for (int i = 1; i < kClients; ++i)
        EXPECT_EQ(results[0], results[i]) << "client " << i;
    // Single-flight: concurrent identical requests share one
    // computation (followers count as cache hits).
    const serve::ServerStats st = server.stats();
    EXPECT_EQ(st.served, static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(st.simsRun, 1u);
    EXPECT_EQ(st.cacheHits, static_cast<std::uint64_t>(kClients - 1));
    server.stop();
}

TEST(Serve, ZeroQueueRejectsOverloaded)
{
    serve::ServerOptions so = testOptions();
    so.maxQueue = 0;
    serve::Server server(so);
    server.start();
    TestClient c(server.port());
    const json::Value r = parseResponse(c.roundTrip(kStudyReq));
    EXPECT_FALSE(isOk(r));
    EXPECT_EQ(field(r, "error"), "overloaded");
    EXPECT_EQ(server.stats().rejectedOverload, 1u);
    server.stop();
}

TEST(Serve, ZeroDeadlineExpires)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());
    const json::Value r = parseResponse(c.roundTrip(
        R"({"id":"d","type":"study","app":"fft","size":1024,"procs":[2],"deadlineMs":0})"));
    EXPECT_FALSE(isOk(r));
    EXPECT_EQ(field(r, "error"), "expired");
    EXPECT_EQ(server.stats().expired, 1u);
    EXPECT_EQ(server.stats().simsRun, 0u) << "expired work never runs";
    server.stop();
}

TEST(Serve, SimFailureDoesNotPoisonTheCache)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());

    // Twice the same mid-sim-throwing trace: both must re-simulate
    // and both must report the failure (no cached error, no cached
    // stale payload).
    for (int i = 0; i < 2; ++i) {
        const json::Value r =
            parseResponse(c.roundTrip(kPoisonTraceReq));
        EXPECT_FALSE(isOk(r));
        EXPECT_EQ(field(r, "error"), "sim-failed");
    }
    EXPECT_EQ(server.stats().simFailed, 2u);
    EXPECT_EQ(server.stats().simsRun, 2u)
        << "a failed computation must not be served from cache";

    // And the server still works.
    const json::Value ok = parseResponse(c.roundTrip(kStudyReq));
    EXPECT_TRUE(isOk(ok)) << field(ok, "detail");
    server.stop();
}

TEST(Serve, GracefulStopDrainsInFlightWork)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());
    c.send(
        R"({"id":"g","type":"study","app":"ocean","size":130,"procs":[4]})");

    // Wait until a worker has started the simulation, then stop the
    // server while it is in flight.
    while (server.stats().simsRun == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::thread stopper([&] { server.stop(); });

    const json::Value r = parseResponse(c.recv());
    EXPECT_TRUE(isOk(r)) << field(r, "detail");
    EXPECT_EQ(field(r, "id"), "g");
    stopper.join();
    EXPECT_EQ(server.stats().served, 1u);
}

TEST(Serve, ConcurrentStopCallersAreSerialized)
{
    serve::Server server(testOptions());
    server.start();
    TestClient c(server.port());
    EXPECT_TRUE(isOk(
        parseResponse(c.roundTrip(R"({"id":"a","type":"ping"})"))));

    // Both callers race the same teardown; one must win and the other
    // block until it completes (double-join would be UB — TSan-pinned).
    std::thread t1([&] { server.stop(); });
    std::thread t2([&] { server.stop(); });
    t1.join();
    t2.join();
    server.stop(); // and it stays idempotent afterwards
}

TEST(Serve, VanishedClientDoesNotKillTheServer)
{
    serve::Server server(testOptions());
    server.start();
    {
        // Pipeline two requests, then disappear before the responses
        // are written: the sends must fail with EPIPE, not raise a
        // process-killing SIGPIPE (nothing here installed SIG_IGN).
        TestClient c(server.port());
        c.send(kStudyReq);
        c.send(kStudyReq);
    } // fd closed here
    while (server.stats().served < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // The server is alive and still answering.
    TestClient c2(server.port());
    EXPECT_TRUE(isOk(
        parseResponse(c2.roundTrip(R"({"id":"b","type":"ping"})"))));
    server.stop();
}

TEST(Serve, ShutdownRequestStopsTheServer)
{
    serve::Server server(testOptions());
    server.start();
    const int port = server.port();
    {
        TestClient c(port);
        const json::Value r = parseResponse(
            c.roundTrip(R"({"id":"z","type":"shutdown"})"));
        EXPECT_TRUE(isOk(r));
        EXPECT_EQ(field(r, "type"), "shutdown");
    }
    server.wait(); // returns only once fully stopped
    EXPECT_THROW(serve::connectTcp("127.0.0.1", port),
                 std::runtime_error);
}

TEST(Serve, UnixSocketRoundTrip)
{
    serve::ServerOptions so = testOptions();
    so.unixPath = ::testing::TempDir() + "ccnuma_serve_test.sock";
    serve::Server server(so);
    server.start();
    serve::Fd fd = serve::connectUnix(so.unixPath);
    ASSERT_TRUE(serve::writeAll(fd.get(),
                                "{\"id\":\"u\",\"type\":\"ping\"}\n"));
    serve::LineReader reader(fd.get(), 1u << 20);
    std::string resp;
    ASSERT_EQ(reader.next(resp), serve::ReadStatus::Line);
    EXPECT_TRUE(isOk(parseResponse(resp)));
    server.stop();
}

// ---- ResultCache unit tests ----

TEST(ResultCache, SingleFlightConcurrentCallers)
{
    serve::ResultCache cache(8);
    std::atomic<int> computes{0};
    std::vector<std::thread> threads;
    std::vector<std::string> got(8);
    for (int i = 0; i < 8; ++i)
        threads.emplace_back([&, i] {
            got[i] = cache
                         .getOrCompute("k",
                                       [&] {
                                           computes.fetch_add(1);
                                           std::this_thread::sleep_for(
                                               std::chrono::
                                                   milliseconds(5));
                                           return std::string("v");
                                       })
                         .first;
        });
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(computes.load(), 1);
    for (const std::string& g : got)
        EXPECT_EQ(g, "v");
}

TEST(ResultCache, FailedLeaderPromotesFollower)
{
    serve::ResultCache cache(8);
    EXPECT_THROW(cache.getOrCompute(
                     "k",
                     []() -> std::string {
                         throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The failure was not cached; the next caller recomputes.
    const auto [v, cached] =
        cache.getOrCompute("k", [] { return std::string("good"); });
    EXPECT_EQ(v, "good");
    EXPECT_FALSE(cached);
    EXPECT_TRUE(
        cache.getOrCompute("k", [] { return std::string("x"); }).second);
}

TEST(ResultCache, LruEviction)
{
    serve::ResultCache cache(2);
    int computes = 0;
    const auto get = [&](const std::string& k) {
        return cache.getOrCompute(k, [&] {
            ++computes;
            return "v:" + k;
        });
    };
    get("a");
    get("b");
    get("a");      // refresh a
    get("c");      // evicts b (LRU)
    EXPECT_EQ(computes, 3);
    EXPECT_TRUE(get("a").second);
    EXPECT_FALSE(get("b").second) << "b was evicted";
    EXPECT_EQ(computes, 4);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, ZeroCapacityDisables)
{
    serve::ResultCache cache(0);
    int computes = 0;
    for (int i = 0; i < 3; ++i) {
        const auto [v, cached] = cache.getOrCompute("k", [&] {
            ++computes;
            return std::string("v");
        });
        EXPECT_EQ(v, "v");
        EXPECT_FALSE(cached);
    }
    EXPECT_EQ(computes, 3);
}

// ---- wire parser unit tests ----

TEST(Wire, CacheKeyCanonicalization)
{
    const auto parse = [](const std::string& line) {
        const serve::ParsedRequest p = serve::parseRequest(line);
        EXPECT_TRUE(p.ok) << p.detail;
        return p.req;
    };
    // Defaults collapse: explicit mesi/fullbv == unspecified.
    EXPECT_EQ(
        parse(kStudyReq).cacheKey(),
        parse(
            R"({"id":"q","type":"study","app":"fft","size":1024,"procs":[2],"protocol":"mesi","dirFormat":"fullbv"})")
            .cacheKey());
    // deadlineMs gates admission, not results: same key.
    EXPECT_EQ(
        parse(kStudyReq).cacheKey(),
        parse(
            R"({"id":"q","type":"study","app":"fft","size":1024,"procs":[2],"deadlineMs":9999})")
            .cacheKey());
    // Anything that changes the payload changes the key.
    EXPECT_NE(
        parse(kStudyReq).cacheKey(),
        parse(
            R"({"id":"q","type":"study","app":"fft","size":1024,"procs":[4]})")
            .cacheKey());
    EXPECT_NE(
        parse(kStudyReq).cacheKey(),
        parse(
            R"({"id":"q","type":"study","app":"fft","size":1024,"procs":[2],"protocol":"moesi"})")
            .cacheKey());
    EXPECT_NE(
        parse(kStudyReq).cacheKey(),
        parse(
            R"({"id":"q","type":"study","app":"fft","size":1024,"procs":[2],"obs":true})")
            .cacheKey());
}

TEST(Wire, ResponsesEscapeStrings)
{
    const std::string resp =
        serve::errorResponse("a\"b", "bad-json", "line\nbreak");
    const json::ParseResult parsed =
        json::parse(resp.substr(0, resp.size() - 1));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.root.find("id")->str, "a\"b");
    EXPECT_EQ(parsed.root.find("detail")->str, "line\nbreak");
}

} // namespace
