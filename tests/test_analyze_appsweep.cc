/**
 * @file
 * Property test: every registered application variant, run at its
 * golden-harness problem size with the happens-before race detector
 * attached, is race-free. The apps model the paper's
 * properly-synchronized programs, so any report here is either an app
 * synchronization bug or a detector bug — both fail loudly, with the
 * formatted race as the message.
 *
 * A second expectation pins determinism: two runs of the same app see
 * bit-identical detector statistics (the simulator is single-threaded
 * and seeded, so the observer callback stream replays exactly).
 */

#include <gtest/gtest.h>

#include "analyze/sweep.hh"
#include "apps/registry.hh"

using namespace ccnuma;

class AppRaceSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppRaceSweep, GoldenSizeRunIsRaceFree)
{
    const std::string name = GetParam();
    const analyze::AppRaceResult r = analyze::analyzeApp(name);

    EXPECT_TRUE(r.races.empty())
        << name << ": " << r.races.front().format();
    EXPECT_EQ(r.stats.racesFound, 0u) << name;
    EXPECT_GT(r.stats.memOps, 0u) << name;
    EXPECT_GT(r.time, 0u) << name;

    const analyze::AppRaceResult again = analyze::analyzeApp(name);
    EXPECT_EQ(r.time, again.time) << name;
    EXPECT_EQ(r.stats.memOps, again.stats.memOps) << name;
    EXPECT_EQ(r.stats.syncOps, again.stats.syncOps) << name;
    EXPECT_EQ(r.stats.vcJoins, again.stats.vcJoins) << name;
    EXPECT_EQ(r.stats.shadowLocations, again.stats.shadowLocations)
        << name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppRaceSweep,
                         ::testing::ValuesIn(apps::listApps()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (auto& ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });
