/**
 * @file
 * Tests for the randomized stress harness: deterministic generation
 * and bit-identical replay (including failing runs), structural
 * invariants of generated programs, clean-protocol sweeps over many
 * seeds, and the mutation self-test with automatic witness shrinking.
 */

#include <gtest/gtest.h>

#include <map>

#include "check/shrink.hh"
#include "check/stress.hh"

using namespace ccnuma;
using check::Op;
using check::OpKind;

namespace {

check::StressOptions
quickOptions(std::uint64_t seed)
{
    check::StressOptions opt;
    opt.seed = seed;
    opt.procs = 4;
    opt.opsPerProc = 120;
    // ~400 commits per run: a low cadence so every run validates.
    opt.validateEvery = 128;
    return opt;
}

} // namespace

TEST(StressGenerate, IsDeterministic)
{
    const check::StressOptions opt = quickOptions(99);
    const check::StressProgram a = check::generate(opt);
    const check::StressProgram b = check::generate(opt);
    ASSERT_EQ(a.procs(), b.procs());
    ASSERT_EQ(a.numOps(), b.numOps());
    for (int p = 0; p < a.procs(); ++p)
        for (std::size_t i = 0; i < a.ops[p].size(); ++i) {
            EXPECT_EQ(a.ops[p][i].kind, b.ops[p][i].kind);
            EXPECT_EQ(a.ops[p][i].slot, b.ops[p][i].slot);
            EXPECT_EQ(a.ops[p][i].group, b.ops[p][i].group);
        }
}

TEST(StressGenerate, BarrierGroupsAlignAcrossProcessors)
{
    check::StressOptions opt = quickOptions(7);
    opt.barriers = 4;
    const check::StressProgram prog = check::generate(opt);
    // Every processor must pass the same barrier instances in the same
    // order, or the program deadlocks.
    std::vector<std::vector<std::uint64_t>> seen(
        static_cast<std::size_t>(prog.procs()));
    for (int p = 0; p < prog.procs(); ++p)
        for (const Op& op : prog.ops[static_cast<std::size_t>(p)])
            if (op.kind == OpKind::Barrier)
                seen[static_cast<std::size_t>(p)].push_back(op.group);
    for (int p = 1; p < prog.procs(); ++p)
        EXPECT_EQ(seen[static_cast<std::size_t>(p)], seen[0]);
    EXPECT_EQ(seen[0].size(), 4u);
}

TEST(StressGenerate, LockSectionsAreBalancedPairs)
{
    check::StressOptions opt = quickOptions(11);
    opt.lockFrac = 0.25; // force plenty of sections
    const check::StressProgram prog = check::generate(opt);
    bool sawSection = false;
    for (int p = 0; p < prog.procs(); ++p) {
        std::map<std::uint32_t, int> depth;
        for (const Op& op : prog.ops[static_cast<std::size_t>(p)]) {
            if (op.kind == OpKind::LockAcq) {
                sawSection = true;
                EXPECT_EQ(depth[op.slot], 0) << "nested same-lock acq";
                ++depth[op.slot];
            } else if (op.kind == OpKind::LockRel) {
                EXPECT_EQ(depth[op.slot], 1) << "release without acq";
                --depth[op.slot];
            } else if (op.kind == OpKind::Barrier) {
                for (const auto& [lock, d] : depth)
                    EXPECT_EQ(d, 0)
                        << "barrier inside lock section " << lock;
            }
        }
        for (const auto& [lock, d] : depth)
            EXPECT_EQ(d, 0) << "unreleased lock " << lock;
    }
    EXPECT_TRUE(sawSection);
}

TEST(StressRun, CleanProtocolPassesManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const check::StressReport rep =
            check::runStress(quickOptions(seed));
        EXPECT_FALSE(rep.failed)
            << "seed " << seed << ": " << rep.message;
        EXPECT_GT(rep.loadsChecked, 0u) << "seed " << seed;
        EXPECT_GT(rep.validations, 0u) << "seed " << seed;
    }
}

TEST(StressRun, ReplayIsBitIdentical)
{
    const check::StressOptions opt = quickOptions(12345);
    const check::StressReport a = check::runStress(opt);
    const check::StressReport b = check::runStress(opt);
    EXPECT_TRUE(a == b);
    EXPECT_NE(a.stateHash, 0u);

    // Different seeds must actually change the execution.
    const check::StressReport c = check::runStress(quickOptions(54321));
    EXPECT_NE(a.stateHash, c.stateHash);
}

TEST(StressShrink, PassingProgramIsReturnedUnchanged)
{
    const check::StressOptions opt = quickOptions(3);
    const check::StressProgram prog = check::generate(opt);
    const check::ShrinkResult res = check::shrink(prog, opt);
    EXPECT_FALSE(res.report.failed);
    EXPECT_EQ(res.opsAfter, res.opsBefore);
    EXPECT_EQ(res.runs, 1);
}

#ifdef CCNUMA_CHECK_MUTATE
TEST(StressMutation, BrokenInvalidationIsCaughtReplayedAndShrunk)
{
    check::StressOptions opt = quickOptions(1);
    opt.procs = 8;
    opt.opsPerProc = 250;
    opt.mutation = sim::CheckMutation::SkipInvalidation;

    // 1. The oracle catches the deliberately broken protocol.
    const check::StressReport rep = check::runStress(opt);
    ASSERT_TRUE(rep.failed) << "mutation went undetected";
    EXPECT_FALSE(rep.message.empty());
    EXPECT_GT(rep.failCommit, 0u);

    // 2. The failing seed replays bit-identically.
    const check::StressReport replay = check::runStress(opt);
    EXPECT_TRUE(replay == rep);

    // 3. The witness shrinks to a handful of ops (<= 50 required).
    const check::ShrinkResult sh =
        check::shrink(check::generate(opt), opt);
    EXPECT_TRUE(sh.report.failed);
    EXPECT_LE(sh.opsAfter, 50u);
    EXPECT_LT(sh.opsAfter, sh.opsBefore);
    // The witness report itself replays bit-identically too.
    const check::StressReport again = check::execute(sh.program, opt);
    EXPECT_TRUE(again == sh.report);
    // And the formatted witness is printable and mentions each op.
    const std::string text = check::formatWitness(sh.program);
    EXPECT_NE(text.find("proc"), std::string::npos);
}

TEST(StressMutation, CaughtAcrossSeeds)
{
    // The detector must not depend on one lucky interleaving.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        check::StressOptions opt = quickOptions(seed);
        opt.mutation = sim::CheckMutation::SkipInvalidation;
        const check::StressReport rep = check::runStress(opt);
        EXPECT_TRUE(rep.failed)
            << "seed " << seed << " did not expose the mutation";
    }
}
#else
TEST(StressMutation, BrokenInvalidationIsCaughtReplayedAndShrunk)
{
    GTEST_SKIP() << "built with CCNUMA_CHECK_MUTATE=OFF";
}
#endif
