/**
 * @file
 * Property and identity tests for the calendar-queue scheduler ready
 * list.
 *
 * The contract (see sim/calqueue.hh): as long as no event is pushed
 * with a time earlier than the last popped event's bucket — which the
 * scheduler guarantees, since a processor is re-queued at or after the
 * time it just ran to — pop order is EXACTLY the (time, seq) order of
 * the legacy std::priority_queue. The property test drives randomized
 * push/pop traces with quantum-bounded disorder against both a sorted
 * oracle and the heap; the identity test runs every registered app on
 * both ready-list implementations and requires cycle-exact agreement.
 */

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "check/golden.hh"
#include "core/study.hh"
#include "sim/calqueue.hh"

namespace {

using ccnuma::sim::CalendarQueue;
using ccnuma::sim::Cycles;
using ccnuma::sim::SchedEvent;
using ccnuma::sim::SchedEventAfter;

using Heap = std::priority_queue<SchedEvent, std::vector<SchedEvent>,
                                 SchedEventAfter>;

/// Random interleave of pushes and pops under the scheduler's
/// workload shape: each push's time is within [frontier, frontier +
/// spread] where frontier is the last popped time (quantum-bounded
/// disorder), with occasional far-future wake-ups to exercise the
/// overflow heap.
void
identicalPopOrder(std::uint64_t seed, Cycles quantum, Cycles spread,
                  double farFrac, int steps)
{
    std::mt19937_64 rng(seed);
    CalendarQueue cal(quantum);
    Heap heap;
    std::uint64_t seq = 0;
    Cycles frontier = 0;

    for (int i = 0; i < steps; ++i) {
        const bool canPop = !heap.empty();
        const bool doPush = !canPop || rng() % 5 != 0;
        if (doPush) {
            Cycles t = frontier + rng() % (spread + 1);
            if (farFrac > 0 &&
                (rng() % 1000) < static_cast<std::uint64_t>(
                                     farFrac * 1000))
                t = frontier + quantum * 200 + rng() % (64 * quantum);
            const SchedEvent e{t, seq++,
                               static_cast<int>(rng() % 64)};
            cal.push(e);
            heap.push(e);
        } else {
            ASSERT_FALSE(cal.empty());
            const SchedEvent want = heap.top();
            heap.pop();
            const SchedEvent got = cal.pop();
            ASSERT_EQ(got.time, want.time) << "step " << i;
            ASSERT_EQ(got.seq, want.seq) << "step " << i;
            ASSERT_EQ(got.p, want.p) << "step " << i;
            frontier = got.time;
        }
    }
    // Drain: the tails must agree too.
    while (!heap.empty()) {
        const SchedEvent want = heap.top();
        heap.pop();
        ASSERT_FALSE(cal.empty());
        const SchedEvent got = cal.pop();
        ASSERT_EQ(got.time, want.time);
        ASSERT_EQ(got.seq, want.seq);
    }
    EXPECT_TRUE(cal.empty());
}

TEST(CalendarQueue, MatchesHeapUnderQuantumDisorder)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        identicalPopOrder(seed, /*quantum=*/500, /*spread=*/500,
                          /*farFrac=*/0.0, 3000);
}

TEST(CalendarQueue, MatchesHeapWithFarFutureWakeups)
{
    // ~3% of pushes land hundreds of quanta ahead: they must overflow
    // into the heap and drain back in exact order.
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        identicalPopOrder(seed, 500, 500, 0.03, 3000);
}

TEST(CalendarQueue, MatchesHeapAcrossQuantumSizes)
{
    // Bucket width derives from the quantum; sweep both tiny (clamped
    // to the 64-cycle floor) and huge quanta.
    for (Cycles q : {1u, 64u, 100u, 2000u, 1u << 20})
        identicalPopOrder(/*seed=*/42, q, q, 0.01, 2000);
}

TEST(CalendarQueue, ManyTiesPopInPushOrder)
{
    // All events at the same time: FIFO by seq, the heap's tie rule.
    CalendarQueue cal(500);
    Heap heap;
    for (std::uint64_t s = 0; s < 100; ++s) {
        const SchedEvent e{1000, s, static_cast<int>(s % 7)};
        cal.push(e);
        heap.push(e);
    }
    for (int i = 0; i < 100; ++i) {
        const SchedEvent want = heap.top();
        heap.pop();
        const SchedEvent got = cal.pop();
        ASSERT_EQ(got.seq, want.seq);
    }
}

TEST(CalendarQueue, PastPushStillPopsBeforeLaterEvents)
{
    // A push earlier than the cursor is clamped into the cursor bucket:
    // it degrades gracefully (pops before anything later) instead of
    // being lost or reordered past later events.
    CalendarQueue cal(500);
    cal.push(SchedEvent{10000, 0, 1});
    const SchedEvent first = cal.pop();
    EXPECT_EQ(first.p, 1);
    cal.push(SchedEvent{500, 1, 2});   // far in the cursor's past
    cal.push(SchedEvent{20000, 2, 3});
    EXPECT_EQ(cal.pop().p, 2);
    EXPECT_EQ(cal.pop().p, 3);
    EXPECT_TRUE(cal.empty());
}

// ---- cycle identity on the real scheduler ----

TEST(SchedulerCalendar, CycleIdenticalToLegacyHeapOnAllApps)
{
    // Both ready-list implementations must produce the same execution,
    // cycle for cycle and counter for counter, on every registered app.
    const int procs = 8;
    for (const std::string& name : ccnuma::apps::listApps()) {
        const std::uint64_t size = ccnuma::check::goldenSize(name);
        ccnuma::sim::MachineConfig cal =
            ccnuma::sim::MachineConfig::origin2000(procs);
        ccnuma::sim::MachineConfig legacy = cal;
        legacy.check.legacySchedulerQueue = true;

        auto appA = ccnuma::apps::makeApp(name, size);
        const ccnuma::sim::RunResult a =
            ccnuma::core::runApp(cal, *appA);
        auto appB = ccnuma::apps::makeApp(name, size);
        const ccnuma::sim::RunResult b =
            ccnuma::core::runApp(legacy, *appB);

        EXPECT_EQ(a.time, b.time) << name;
        ASSERT_EQ(a.procs.size(), b.procs.size()) << name;
        for (std::size_t p = 0; p < a.procs.size(); ++p) {
            EXPECT_EQ(a.procs[p].c.loads, b.procs[p].c.loads)
                << name << " p" << p;
            EXPECT_EQ(a.procs[p].c.stores, b.procs[p].c.stores)
                << name << " p" << p;
            EXPECT_EQ(a.procs[p].c.l2Hits, b.procs[p].c.l2Hits)
                << name << " p" << p;
            EXPECT_EQ(a.procs[p].c.missLocal, b.procs[p].c.missLocal)
                << name << " p" << p;
            EXPECT_EQ(a.procs[p].c.missRemoteClean,
                      b.procs[p].c.missRemoteClean)
                << name << " p" << p;
            EXPECT_EQ(a.procs[p].c.missRemoteDirty,
                      b.procs[p].c.missRemoteDirty)
                << name << " p" << p;
            EXPECT_EQ(a.procs[p].t.busy, b.procs[p].t.busy)
                << name << " p" << p;
            EXPECT_EQ(a.procs[p].t.memStall, b.procs[p].t.memStall)
                << name << " p" << p;
            EXPECT_EQ(a.procs[p].t.syncWait, b.procs[p].t.syncWait)
                << name << " p" << p;
        }
    }
}

} // namespace
