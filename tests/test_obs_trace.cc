/**
 * @file
 * Unit tests for the observability building blocks: trace ring buffer
 * wrap/overflow accounting, power-of-two latency histograms, the
 * streaming JSON writer and the event-name schema. These classes are
 * defined even when tracing is compiled out, so the tests run in both
 * build modes.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "obs/json.hh"
#include "obs/trace.hh"

using namespace ccnuma;
using obs::EventKind;
using obs::JsonWriter;
using obs::LatencyHisto;
using obs::TraceBuffer;
using obs::TraceRecord;

namespace {

TraceRecord
rec(std::uint64_t seq)
{
    TraceRecord r;
    r.start = seq;
    r.addr = seq * 128;
    r.proc = static_cast<std::int16_t>(seq % 8);
    return r;
}

std::vector<std::uint64_t>
starts(const TraceBuffer& b)
{
    std::vector<std::uint64_t> out;
    b.forEach([&](const TraceRecord& r) { out.push_back(r.start); });
    return out;
}

} // namespace

TEST(TraceBuffer, NoWrapKeepsEverythingInOrder)
{
    TraceBuffer b(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        b.push(rec(i));
    EXPECT_EQ(b.capacity(), 8u);
    EXPECT_EQ(b.size(), 5u);
    EXPECT_EQ(b.recorded(), 5u);
    EXPECT_EQ(b.dropped(), 0u);
    EXPECT_EQ(starts(b), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(TraceBuffer, WrapOverwritesOldestAndCountsDrops)
{
    TraceBuffer b(8);
    for (std::uint64_t i = 0; i < 20; ++i)
        b.push(rec(i));
    EXPECT_EQ(b.size(), 8u);
    EXPECT_EQ(b.recorded(), 20u);
    EXPECT_EQ(b.dropped(), 12u);
    // Retained records are the newest eight, visited oldest-first.
    EXPECT_EQ(starts(b), (std::vector<std::uint64_t>{12, 13, 14, 15, 16,
                                                     17, 18, 19}));
}

TEST(TraceBuffer, ExactlyFullIsNotYetDropping)
{
    TraceBuffer b(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        b.push(rec(i));
    EXPECT_EQ(b.size(), 4u);
    EXPECT_EQ(b.dropped(), 0u);
    b.push(rec(4));
    EXPECT_EQ(b.size(), 4u);
    EXPECT_EQ(b.dropped(), 1u);
    EXPECT_EQ(starts(b), (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(TraceBuffer, ZeroCapacityOnlyCounts)
{
    TraceBuffer b(0);
    for (std::uint64_t i = 0; i < 10; ++i)
        b.push(rec(i));
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.recorded(), 10u);
    int visited = 0;
    b.forEach([&](const TraceRecord&) { ++visited; });
    EXPECT_EQ(visited, 0);
}

TEST(LatencyHisto, BasicMoments)
{
    LatencyHisto h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    h.add(100);
    h.add(200);
    h.add(300);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 100u);
    EXPECT_EQ(h.max(), 300u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LatencyHisto, PowerOfTwoBucketing)
{
    LatencyHisto h;
    h.add(0); // bucket 0: [0, 2)
    h.add(1);
    h.add(2); // bucket 1: [2, 4)
    h.add(3);
    h.add(1000); // bucket 9: [512, 1024)
    std::vector<std::uint64_t> los, counts;
    h.forEachBucket(
        [&](sim::Cycles lo, sim::Cycles hi, std::uint64_t n) {
            EXPECT_LT(lo, hi);
            los.push_back(lo);
            counts.push_back(n);
        });
    EXPECT_EQ(los, (std::vector<std::uint64_t>{0, 2, 512}));
    EXPECT_EQ(counts, (std::vector<std::uint64_t>{2, 2, 1}));
}

TEST(LatencyHisto, QuantileIsUpperBoundWithinBucket)
{
    LatencyHisto h;
    for (int i = 0; i < 99; ++i)
        h.add(100); // bucket [64, 128)
    h.add(100000); // one outlier
    // Median lands in the dense bucket; the estimate is its upper edge
    // (clamped to max), never below the true value.
    EXPECT_GE(h.quantile(0.5), 100u);
    EXPECT_LE(h.quantile(0.5), 127u);
    // The extreme quantile reaches the outlier's bucket.
    EXPECT_GE(h.quantile(1.0), 100000u);
    EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(EventNames, StableSchema)
{
    EXPECT_STREQ(obs::eventName(EventKind::MissLocal), "miss_local");
    EXPECT_STREQ(obs::eventName(EventKind::MissRemoteDirty),
                 "miss_remote_dirty");
    EXPECT_STREQ(obs::eventName(EventKind::Upgrade), "upgrade");
    EXPECT_STREQ(obs::eventName(EventKind::Invalidation), "invalidation");
    EXPECT_STREQ(obs::eventName(EventKind::PageMigration),
                 "page_migration");
    // Every kind has a distinct, nonempty name.
    std::vector<std::string> names;
    for (int i = 0; i < obs::kNumEventKinds; ++i)
        names.emplace_back(
            obs::eventName(static_cast<EventKind>(i)));
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_FALSE(names[i].empty());
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
    }
}

TEST(JsonWriter, CompactObjectAndArray)
{
    std::ostringstream os;
    {
        JsonWriter w(os, 0);
        w.beginObject();
        w.field("name", "fft");
        w.field("procs", 64);
        w.field("ratio", 0.5);
        w.field("ok", true);
        w.beginArray("xs");
        w.field("", std::uint64_t{1});
        w.field("", std::uint64_t{2});
        w.endArray();
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"name\":\"fft\",\"procs\":64,\"ratio\":0.5,"
                        "\"ok\":true,\"xs\":[1,2]}");
}

TEST(JsonWriter, EscapesControlAndQuote)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\n\t"),
              "a\\\"b\\\\c\\n\\t");
    // Control characters below 0x20 become \u00XX escapes.
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    {
        JsonWriter w(os, 0);
        w.beginObject();
        w.field("bad", std::numeric_limits<double>::quiet_NaN());
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"bad\":null}");
}
