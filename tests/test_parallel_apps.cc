/**
 * @file
 * App-level differential suite for the parallel scout/replay engine:
 * every registered application variant, under each coherence protocol,
 * must produce metrics bit-identical to the serial oracle when run
 * with simJobs > 1 through core::runApp.
 *
 * Timing-invariant apps genuinely exercise the parallel engine here;
 * timing-variant apps (task-queue stealers, barnes-mergetree) are
 * clamped back to serial by core::runApp — the sweep proves the clamp
 * composes so `ccnuma_verify golden --sim-jobs=N` is zero-diff over
 * the whole registry.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "bit_identity.hh"
#include "check/golden.hh"
#include "core/study.hh"
#include "sim/config.hh"

using namespace ccnuma;

namespace {

sim::RunResult
runOnceOk(const std::string& name, const std::string& protocol,
          int procs, int sim_jobs)
{
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(procs);
    EXPECT_TRUE(cfg.protocol.parse(protocol)) << protocol;
    cfg.simJobs = sim_jobs;
    apps::AppPtr app = apps::makeApp(name, check::goldenSize(name));
    return core::runApp(cfg, *app);
}

} // namespace

class ParallelAppDiff : public ::testing::TestWithParam<std::string> {};

/// Every app, default protocol, worker counts {2, 4, auto}.
TEST_P(ParallelAppDiff, BitIdenticalAcrossWorkerCounts)
{
    const std::string name = GetParam();
    const sim::RunResult oracle = runOnceOk(name, "mesi", 8, 1);
    for (const int jobs : {2, 4, 0})
        testutil::expectIdentical(
            oracle, runOnceOk(name, "mesi", 8, jobs),
            name + " simJobs=" + std::to_string(jobs));
}

/// Every app under the non-default protocols at one worker count.
TEST_P(ParallelAppDiff, BitIdenticalUnderEveryProtocol)
{
    const std::string name = GetParam();
    for (const char* protocol : {"moesi", "dragon"})
        testutil::expectIdentical(
            runOnceOk(name, protocol, 8, 1),
            runOnceOk(name, protocol, 8, 4),
            name + std::string(" protocol=") + protocol);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, ParallelAppDiff,
    ::testing::ValuesIn(apps::listApps()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string n = info.param;
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

/// The golden harness *is* the differential harness: the serialized
/// snapshot must be byte-identical between the serial engine and the
/// parallel engine (this is exactly what `ccnuma_verify golden
/// --sim-jobs=N` checks against the committed baseline).
TEST(ParallelGolden, SnapshotJsonByteIdentical)
{
    const std::string serial = check::toJson(check::computeGolden(4, 1));
    const std::string par = check::toJson(check::computeGolden(4, 4));
    EXPECT_EQ(serial, par);
}
