/**
 * @file
 * Correctness tests for the FFT and sorting kernels (the real
 * algorithms whose partitioning the simulator skeletons replay).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "kernels/fft.hh"
#include "kernels/sort.hh"

using namespace ccnuma::kernels;

TEST(FftKernel, MatchesNaiveDft)
{
    std::vector<Cplx> in(64);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = Cplx(std::sin(0.37 * i), std::cos(1.1 * i));
    std::vector<Cplx> fast = in;
    fft1d(fast.data(), fast.size(), false);
    const std::vector<Cplx> slow = dftNaive(in, false);
    EXPECT_LT(maxError(fast, slow), 1e-9);
}

TEST(FftKernel, RoundTripIdentity)
{
    std::vector<Cplx> in(256);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = Cplx(1.0 / (i + 1), static_cast<double>(i % 7));
    std::vector<Cplx> x = in;
    fft1d(x.data(), x.size(), false);
    fft1d(x.data(), x.size(), true);
    EXPECT_LT(maxError(x, in), 1e-10);
}

TEST(FftKernel, SixStepMatchesDirect)
{
    const std::size_t rows = 16; // n = 256
    std::vector<Cplx> a(rows * rows), b;
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = Cplx(std::cos(0.13 * i), std::sin(0.29 * i));
    b = a;
    fftSixStep(a.data(), rows, false);
    fft1d(b.data(), b.size(), false);
    EXPECT_LT(maxError(a, b), 1e-8);
}

TEST(FftKernel, TransposeBlockedIsTranspose)
{
    const std::size_t rows = 24;
    std::vector<Cplx> a(rows * rows), b(rows * rows);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = Cplx(static_cast<double>(i), 0);
    transposeBlocked(a.data(), b.data(), rows, 5);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < rows; ++c)
            EXPECT_EQ(b[c * rows + r], a[r * rows + c]);
}

TEST(FftKernel, RejectsNonPowerOfTwo)
{
    std::vector<Cplx> a(6);
    EXPECT_THROW(fft1d(a.data(), 6, false), std::invalid_argument);
}

TEST(SortKernel, RadixSortSorts)
{
    auto keys = randomKeys(10000, 99);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    radixSort(keys, 8);
    EXPECT_EQ(keys, expect);
}

TEST(SortKernel, RadixSortVariousDigitWidths)
{
    for (const int bits : {4, 8, 11, 16}) {
        auto keys = randomKeys(4096, bits * 7);
        auto expect = keys;
        std::sort(expect.begin(), expect.end());
        radixSort(keys, bits);
        EXPECT_EQ(keys, expect) << "bits=" << bits;
    }
}

TEST(SortKernel, RadixPassIsStableAndCounts)
{
    const std::vector<std::uint32_t> in = {0x21, 0x11, 0x22, 0x12,
                                           0x23};
    std::vector<std::uint32_t> out;
    const auto hist = radixPass(in, out, 0, 4);
    EXPECT_EQ(hist[1], 2u);
    EXPECT_EQ(hist[2], 2u);
    EXPECT_EQ(hist[3], 1u);
    // Stable: 0x21 before 0x11? No -- sorted by low digit; stability
    // preserves input order within a digit.
    EXPECT_EQ(out, (std::vector<std::uint32_t>{0x21, 0x11, 0x22, 0x12,
                                               0x23}));
}

TEST(SortKernel, SplittersPartitionRoughlyEvenly)
{
    const auto keys = randomKeys(1 << 16, 4);
    const int parts = 16;
    const auto split = sampleSplitters(keys, parts, 64, 5);
    ASSERT_EQ(split.size(), static_cast<std::size_t>(parts - 1));
    EXPECT_TRUE(std::is_sorted(split.begin(), split.end()));
    const auto hist = bucketHistogram(keys, split);
    const double ideal = static_cast<double>(keys.size()) / parts;
    for (const auto h : hist)
        EXPECT_NEAR(static_cast<double>(h), ideal, ideal * 0.5);
}

TEST(SortKernel, BucketOfRespectsBoundaries)
{
    const std::vector<std::uint32_t> split = {10, 20, 30};
    EXPECT_EQ(bucketOf(5, split), 0);
    EXPECT_EQ(bucketOf(10, split), 1); // upper_bound: key == splitter
    EXPECT_EQ(bucketOf(11, split), 1);
    EXPECT_EQ(bucketOf(25, split), 2);
    EXPECT_EQ(bucketOf(35, split), 3);
}

TEST(SortKernel, DeterministicKeys)
{
    EXPECT_EQ(randomKeys(100, 7), randomKeys(100, 7));
    EXPECT_NE(randomKeys(100, 7), randomKeys(100, 8));
}
