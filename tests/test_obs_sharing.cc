/**
 * @file
 * Tests for the sharing profiler: true vs. false sharing classification
 * from sub-line word offsets on hand-built access patterns, hot-line
 * ranking, and an end-to-end run in which a deliberately false-shared
 * line must be flagged.
 */

#include <gtest/gtest.h>

#include "obs/trace.hh"
#include "sim/machine.hh"

using namespace ccnuma;
using namespace ccnuma::sim;
using obs::EventKind;
using obs::SharingProfiler;
using Class = obs::SharingProfiler::Class;

namespace {

constexpr std::uint32_t kLine = 128;
constexpr std::uint32_t kPage = 16u << 10;

} // namespace

TEST(SharingProfiler, SingleProcessorLineIsPrivate)
{
    SharingProfiler sp(kLine, kPage);
    sp.noteAccess(3, 0x1000, true);
    sp.noteAccess(3, 0x1008, false);
    const auto r = sp.report(0x1000);
    EXPECT_EQ(r.cls, Class::Private);
    EXPECT_EQ(r.procsTouched, 1);
    EXPECT_EQ(r.wordsTouched, 2);
    EXPECT_EQ(r.wordsShared, 0);
}

TEST(SharingProfiler, MultipleReadersNeverWrittenIsReadShared)
{
    SharingProfiler sp(kLine, kPage);
    sp.noteAccess(0, 0x2000, false);
    sp.noteAccess(1, 0x2000, false);
    sp.noteAccess(2, 0x2010, false);
    const auto r = sp.report(0x2000);
    EXPECT_EQ(r.cls, Class::ReadShared);
    EXPECT_EQ(r.procsTouched, 3);
    EXPECT_EQ(r.reads, 3u);
    EXPECT_EQ(r.writes, 0u);
    EXPECT_EQ(r.wordsShared, 1) << "word 0 was read by two processors";
}

TEST(SharingProfiler, WrittenWordUsedByTwoProcsIsTrueSharing)
{
    SharingProfiler sp(kLine, kPage);
    sp.noteAccess(0, 0x3000, true);  // p0 writes word 0
    sp.noteAccess(1, 0x3000, false); // p1 reads the same word
    const auto r = sp.report(0x3000);
    EXPECT_EQ(r.cls, Class::TrueSharing);
    EXPECT_EQ(r.wordsShared, 1);
}

TEST(SharingProfiler, DisjointWordsPerProcIsFalseSharing)
{
    SharingProfiler sp(kLine, kPage);
    // Four processors each hammer their own 8-byte slot of one line.
    for (int round = 0; round < 3; ++round)
        for (int p = 0; p < 4; ++p)
            sp.noteAccess(p, 0x4000 + p * 8, true);
    const auto r = sp.report(0x4000);
    EXPECT_EQ(r.cls, Class::FalseSharing);
    EXPECT_EQ(r.procsTouched, 4);
    EXPECT_EQ(r.wordsTouched, 4);
    EXPECT_EQ(r.wordsShared, 0);
    EXPECT_EQ(r.writes, 12u);
}

TEST(SharingProfiler, OneOverlappingWordFlipsFalseToTrue)
{
    SharingProfiler sp(kLine, kPage);
    sp.noteAccess(0, 0x5000, true);
    sp.noteAccess(1, 0x5008, true);
    EXPECT_EQ(sp.report(0x5000).cls, Class::FalseSharing);
    sp.noteAccess(1, 0x5000, false); // p1 now reads p0's word
    EXPECT_EQ(sp.report(0x5000).cls, Class::TrueSharing);
}

TEST(SharingProfiler, WideLineTailFoldsIntoLastWordSlot)
{
    // Lines wider than kMaxWords*8 = 256 bytes clamp tail offsets into
    // the last slot; two procs writing different tail offsets therefore
    // (conservatively) read as true sharing rather than crashing.
    SharingProfiler sp(512, kPage);
    sp.noteAccess(0, 0x8000 + 260, true);
    sp.noteAccess(1, 0x8000 + 300, true);
    const auto r = sp.report(0x8000);
    EXPECT_EQ(r.procsTouched, 2);
    EXPECT_EQ(r.wordsTouched, 1);
    EXPECT_EQ(r.cls, Class::TrueSharing);
}

TEST(SharingProfiler, HotLinesRankByCoherenceTraffic)
{
    SharingProfiler sp(kLine, kPage);
    // Line A: modest traffic. Line B: heavy. Line C: accesses only.
    sp.noteAccess(0, 0xa000, true);
    sp.noteAccess(1, 0xa008, true);
    sp.noteConflict(0xa000, EventKind::Invalidation);
    sp.noteAccess(0, 0xb000, true);
    sp.noteAccess(1, 0xb008, true);
    for (int i = 0; i < 5; ++i)
        sp.noteConflict(0xb000, EventKind::Invalidation);
    sp.noteConflict(0xb000, EventKind::MissRemoteDirty);
    sp.noteConflict(0xb000, EventKind::Upgrade);
    sp.noteAccess(0, 0xc000, false);

    const auto hot = sp.hotLines(10);
    ASSERT_EQ(hot.size(), 2u) << "traffic-free lines are excluded";
    EXPECT_EQ(hot[0].line, 0xb000u);
    EXPECT_EQ(hot[0].traffic(), 7u);
    EXPECT_EQ(hot[0].invalidations, 5u);
    EXPECT_EQ(hot[0].dirtyMisses, 1u);
    EXPECT_EQ(hot[0].upgrades, 1u);
    EXPECT_EQ(hot[1].line, 0xa000u);
    // top_n truncates.
    EXPECT_EQ(sp.hotLines(1).size(), 1u);
}

TEST(SharingProfiler, HotPagesAggregateLines)
{
    SharingProfiler sp(kLine, kPage);
    // Two lines in page 0, one line in page 3.
    sp.noteConflict(0x0000, EventKind::Invalidation);
    sp.noteConflict(0x0080, EventKind::Invalidation);
    sp.noteConflict(3 * kPage, EventKind::Upgrade);
    const auto pages = sp.hotPages(10);
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0].page, 0u);
    EXPECT_EQ(pages[0].traffic(), 2u);
    EXPECT_EQ(pages[0].linesTracked, 2);
    EXPECT_EQ(pages[1].page, 3u);
    EXPECT_EQ(pages[1].linesTracked, 1);
}

TEST(SharingProfiler, UnseenLineReportsZeroedPrivate)
{
    SharingProfiler sp(kLine, kPage);
    const auto r = sp.report(0xdead000);
    EXPECT_EQ(r.cls, Class::Private);
    EXPECT_EQ(r.traffic(), 0u);
    EXPECT_EQ(sp.linesTracked(), 0u);
}

TEST(SharingProfilerIntegration, DeliberateFalseSharingIsFlagged)
{
    if (!obs::kTracingCompiled)
        GTEST_SKIP() << "built with CCNUMA_TRACING=OFF";

    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.trace.intervals = true;
    cfg.trace.sharing = true;
    Machine m(cfg);
    // One line, each processor updating its own 8-byte counter slot:
    // the textbook false-sharing bug.
    const Addr line = m.allocLine();
    const BarrierId bar = m.barrierCreate();
    const RunResult r = m.run([line, bar](Cpu& cpu) -> Task {
        for (int round = 0; round < 8; ++round) {
            cpu.write(line + cpu.id() * 8);
            co_await cpu.barrier(bar);
        }
        co_return;
    });
    ASSERT_NE(r.trace, nullptr);

    const auto rep = r.trace->sharing().report(line);
    EXPECT_EQ(rep.cls, Class::FalseSharing);
    EXPECT_EQ(rep.procsTouched, 4);
    EXPECT_EQ(rep.wordsShared, 0);
    EXPECT_GT(rep.traffic(), 0u) << "the line must actually ping-pong";

    // The bad line shows up in the hot-line ranking.
    bool found = false;
    for (const auto& l : r.trace->sharing().hotLines(10))
        if (l.line == line) {
            found = true;
            EXPECT_EQ(l.cls, Class::FalseSharing);
        }
    EXPECT_TRUE(found);
}

TEST(SharingProfilerIntegration, TrueSharingProducerConsumer)
{
    if (!obs::kTracingCompiled)
        GTEST_SKIP() << "built with CCNUMA_TRACING=OFF";

    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.trace.sharing = true;
    Machine m(cfg);
    // Proc 0 writes word 0; proc 1 reads the same word: actual
    // communication through the line.
    const Addr line = m.allocLine();
    const BarrierId bar = m.barrierCreate();
    const RunResult r = m.run([line, bar](Cpu& cpu) -> Task {
        for (int round = 0; round < 4; ++round) {
            if (cpu.id() == 0)
                cpu.write(line);
            co_await cpu.barrier(bar);
            if (cpu.id() == 1)
                cpu.read(line);
            co_await cpu.barrier(bar);
        }
        co_return;
    });
    ASSERT_NE(r.trace, nullptr);
    const auto rep = r.trace->sharing().report(line);
    EXPECT_EQ(rep.cls, Class::TrueSharing);
    EXPECT_GE(rep.wordsShared, 1);
}
