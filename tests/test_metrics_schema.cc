/**
 * @file
 * JSON-validity and schema tests for the metrics the simulator emits:
 * the strict check::json parser itself (duplicate keys, NaN/Infinity,
 * trailing garbage, exact uint64 round-trips), and every MetricsSink
 * document — including ones fed non-finite scalars and repeated keys,
 * which must still come out as valid JSON.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "check/json.hh"
#include "core/metrics.hh"
#include "sim/machine.hh"

using namespace ccnuma;
using check::json::Value;

namespace {

std::string
tempPath(const char* name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/// A tiny real run so the sink has genuine breakdown/counter content.
sim::RunResult
tinyRun()
{
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(2);
    sim::Machine m(cfg);
    const sim::Addr a = m.alloc(8 * cfg.lineBytes);
    return m.run([&](sim::Cpu& cpu) -> sim::Task {
        for (int i = 0; i < 8; ++i) {
            cpu.read(a + static_cast<sim::Addr>(i) * cfg.lineBytes);
            cpu.write(a + static_cast<sim::Addr>(i) * cfg.lineBytes);
        }
        cpu.busy(100);
        co_return;
    });
}

} // namespace

TEST(StrictJson, AcceptsWellFormedDocuments)
{
    const auto r = check::json::parse(
        R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e3}})");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.root.isObject());
    EXPECT_EQ(r.root.find("a")->asU64(), 1u);
    EXPECT_EQ(r.root.find("b")->arr.size(), 3u);
    EXPECT_EQ(r.root.find("b")->arr[2].str, "x\n");
    EXPECT_DOUBLE_EQ(r.root.find("c")->find("d")->asDouble(), -2500.0);
}

TEST(StrictJson, RejectsDuplicateKeys)
{
    const auto r = check::json::parse(R"({"k": 1, "k": 2})");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("duplicate"), std::string::npos) << r.error;
}

TEST(StrictJson, RejectsNaNAndInfinity)
{
    for (const char* doc :
         {R"({"v": NaN})", R"({"v": Infinity})", R"({"v": -Infinity})",
          R"([nan])"}) {
        const auto r = check::json::parse(doc);
        EXPECT_FALSE(r.ok) << doc;
    }
}

TEST(StrictJson, RejectsTrailingGarbageAndMalformedNumbers)
{
    EXPECT_FALSE(check::json::parse(R"({"a": 1} extra)").ok);
    EXPECT_FALSE(check::json::parse(R"({"a": 1.})").ok);
    EXPECT_FALSE(check::json::parse(R"({"a": 1e})").ok);
    EXPECT_FALSE(check::json::parse(R"({"a": })").ok);
    EXPECT_FALSE(check::json::parse("").ok);
    EXPECT_FALSE(check::json::parse(R"({"a": 01]})").ok);
}

TEST(StrictJson, Uint64RoundTripsExactly)
{
    // 2^64 - 1 is not representable in a double; the raw-text path
    // must preserve it anyway.
    const auto r =
        check::json::parse(R"({"cycles": 18446744073709551615})");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.root.find("cycles")->asU64(), 18446744073709551615ull);
}

TEST(MetricsSchema, SinkOutputIsValidAndComplete)
{
    const std::string path = tempPath("metrics_schema.json");
    core::MetricsSink sink(path);
    const sim::RunResult r = tinyRun();
    sink.add("run-a", r);
    sink.addScalar("run-a", "speedup", 1.5);
    sink.addScalar("scalar-only", "efficiency", 0.75);
    ASSERT_TRUE(sink.write());

    const auto doc = check::json::parseFile(path);
    ASSERT_TRUE(doc.ok) << doc.error;
    const Value* runs = doc.root.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_TRUE(runs->isArray());
    ASSERT_EQ(runs->arr.size(), 2u);

    const Value& a = runs->arr[0];
    EXPECT_EQ(a.find("label")->str, "run-a");
    EXPECT_DOUBLE_EQ(a.find("speedup")->asDouble(), 1.5);
    EXPECT_GT(a.find("runCycles")->asU64(), 0u);
    const Value* totals = a.find("totals");
    ASSERT_NE(totals, nullptr);
    for (const char* key :
         {"loads", "stores", "l2Hits", "missLocal", "missRemoteClean",
          "missRemoteDirty", "upgrades", "invalsSent", "writebacks",
          "lockAcquires", "barriersPassed"})
        EXPECT_NE(totals->find(key), nullptr) << key;
    const Value* breakdown = a.find("breakdown");
    ASSERT_NE(breakdown, nullptr);
    const double sum = breakdown->find("busy")->asDouble() +
                       breakdown->find("mem")->asDouble() +
                       breakdown->find("sync")->asDouble();
    EXPECT_NEAR(sum, 1.0, 1e-9);
    std::remove(path.c_str());
}

TEST(MetricsSchema, NonFiniteScalarsNeverLeakIntoTheDocument)
{
    const std::string path = tempPath("metrics_nonfinite.json");
    core::MetricsSink sink(path);
    sink.addScalar("bad", "nan_speedup", std::nan(""));
    sink.addScalar("bad", "inf_speedup",
                   std::numeric_limits<double>::infinity());
    ASSERT_TRUE(sink.write());

    const std::string text = slurp(path);
    EXPECT_EQ(text.find("NaN"), std::string::npos);
    EXPECT_EQ(text.find("Infinity"), std::string::npos);
    EXPECT_EQ(text.find(": nan"), std::string::npos);
    EXPECT_EQ(text.find(": inf"), std::string::npos)
        << "raw non-finite token leaked";
    const auto doc = check::json::parseFile(path);
    ASSERT_TRUE(doc.ok) << doc.error;
    // The writer degrades non-finite values to null.
    const Value& bad = doc.root.find("runs")->arr[0];
    EXPECT_EQ(bad.find("nan_speedup")->kind, Value::Kind::Null);
    EXPECT_EQ(bad.find("inf_speedup")->kind, Value::Kind::Null);
    std::remove(path.c_str());
}

TEST(MetricsSchema, RepeatedScalarKeysDoNotEmitDuplicates)
{
    const std::string path = tempPath("metrics_dupkeys.json");
    core::MetricsSink sink(path);
    sink.addScalar("r", "speedup", 1.0);
    sink.addScalar("r", "speedup", 2.0); // overwrite, not append
    ASSERT_TRUE(sink.write());

    const auto doc = check::json::parseFile(path);
    ASSERT_TRUE(doc.ok) << doc.error << " (duplicate key emitted?)";
    EXPECT_DOUBLE_EQ(
        doc.root.find("runs")->arr[0].find("speedup")->asDouble(), 2.0);
    std::remove(path.c_str());
}
