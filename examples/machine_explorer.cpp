/**
 * @file
 * Scenario: architecture what-ifs -- how do machine parameters (page
 * placement policy, processors per node, topology mapping, cache size)
 * change an application's performance? Exercises the simulator's
 * machine-configuration surface end to end.
 *
 * Usage: machine_explorer [app] [size] [procs] [--seed=N]
 *   --seed (or CCNUMA_SEED) controls the random topology-mapping case.
 */

#include <cstdio>
#include <string>

#include "apps/registry.hh"
#include "core/cli.hh"
#include "core/report.hh"
#include "core/study.hh"

using namespace ccnuma;

namespace {

void
runCase(const char* label, const sim::MachineConfig& cfg,
        const std::string& app, std::uint64_t size,
        core::SeqBaselineCache& cache)
{
    const auto m = core::measure(
        cfg, [&] { return apps::makeApp(app, size); }, &cache, app);
    const auto b = m.par.breakdown();
    std::printf("%-34s speedup %6.1f  busy %3.0f%% mem %3.0f%% sync "
                "%3.0f%%\n",
                label, m.speedup(), b.busy * 100, b.mem * 100,
                b.sync * 100);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char** argv)
try {
    core::cli::Options opt = core::cli::parse(argc, argv);
    const std::string app = opt.positionalOr(0, "ocean");
    const std::uint64_t size = opt.positionalOr(1, std::uint64_t{0});
    const int procs = static_cast<int>(
        opt.positionalOr(2, std::uint64_t{64}));

    core::printHeader("machine explorer: " + app + " on " +
                      std::to_string(procs) + " procs");
    core::SeqBaselineCache cache;

    // --protocol / --dir-format reshape the baseline every variation
    // below starts from.
    sim::MachineConfig base = sim::MachineConfig::origin2000(procs);
    core::cli::applyMachine(opt, base);
    core::cli::warnUnknown(opt);
    runCase("baseline (manual placement)", base, app, size, cache);

    sim::MachineConfig rr = base;
    rr.placement = sim::Placement::RoundRobin;
    runCase("round-robin pages", rr, app, size, cache);

    sim::MachineConfig mig = rr;
    mig.pageMigration = true;
    runCase("round-robin + page migration", mig, app, size, cache);

    sim::MachineConfig ft = base;
    ft.placement = sim::Placement::FirstTouch;
    runCase("first-touch pages", ft, app, size, cache);

    sim::MachineConfig one = base;
    one.oneProcPerNode = true;
    runCase("one processor per node", one, app, size, cache);

    sim::MachineConfig rnd = base;
    rnd.mapping = sim::Mapping::Random;
    rnd.mappingSeed = opt.seed;
    runCase("random topology mapping", rnd, app, size, cache);

    sim::MachineConfig small_cache = base;
    small_cache.cacheBytes = 512u << 10;
    runCase("512 KB caches (vs 4 MB)", small_cache, app, size, cache);

    sim::MachineConfig fop = base;
    fop.syncKind = sim::SyncKind::FetchOp;
    fop.barrierAlg = sim::BarrierAlg::Centralized;
    runCase("fetch&op centralized sync", fop, app, size, cache);

    sim::MachineConfig moesi = base;
    moesi.protocol.parse("moesi");
    runCase("MOESI (owner-forwarded sharing)", moesi, app, size, cache);

    sim::MachineConfig dragon = base;
    dragon.protocol.parse("dragon");
    runCase("Dragon (update-based writes)", dragon, app, size, cache);

    sim::MachineConfig coarse = base;
    coarse.dirFormat.parse("coarse:8");
    runCase("coarse-vector directory (K=8)", coarse, app, size, cache);

    sim::MachineConfig dirib = base;
    dirib.dirFormat.parse("ptr:4");
    runCase("limited-pointer directory (4 ptrs)", dirib, app, size,
            cache);

    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr, "known applications: ");
    for (const auto& n : ccnuma::apps::originalApps())
        std::fprintf(stderr, "%s ", n.c_str());
    std::fprintf(stderr, "(+ variants, see README)\n");
    return 1;
}