/**
 * @file
 * Scenario: "will my application scale to 128 processors?" -- the
 * paper's core question, for any application in the registry.
 *
 * Usage: scaling_study [app] [size]
 *   e.g. scaling_study barnes 16384
 *        scaling_study water-spatial 32768
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/registry.hh"
#include "core/report.hh"
#include "core/study.hh"

using namespace ccnuma;

int
main(int argc, char** argv)
try {
    const std::string app = argc > 1 ? argv[1] : "water-spatial";
    const std::uint64_t size =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

    core::printHeader("scaling study: " + app);
    std::printf("problem size: %llu %s\n\n",
                static_cast<unsigned long long>(
                    size ? size : apps::basicSize(app)),
                apps::sizeUnit(app).c_str());

    std::map<std::string, sim::Cycles> seq_cache;
    std::printf("%6s %10s %8s %8s   breakdown\n", "procs", "speedup",
                "effcy", "scales?");
    for (const int P : {2, 8, 32, 64, 128}) {
        sim::MachineConfig cfg;
        cfg.numProcs = P;
        const core::Measurement m = core::measure(
            cfg, [&] { return apps::makeApp(app, size); }, &seq_cache,
            app);
        const auto b = m.par.breakdown();
        std::printf("%6d %10.1f %7.1f%% %8s   busy %.0f%% mem %.0f%% "
                    "sync %.0f%%\n",
                    P, m.speedup(), m.efficiency() * 100,
                    m.efficiency() >= core::kGoodEfficiency ? "yes"
                                                            : "no",
                    b.busy * 100, b.mem * 100, b.sync * 100);
        std::fflush(stdout);
    }

    const std::string restr = apps::restructuredVariant(app);
    if (!restr.empty()) {
        std::printf("\nHint: the paper's restructured variant of this "
                    "application is \"%s\";\ntry: scaling_study %s\n",
                    restr.c_str(), restr.c_str());
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr, "known applications: ");
    for (const auto& n : ccnuma::apps::originalApps())
        std::fprintf(stderr, "%s ", n.c_str());
    std::fprintf(stderr, "(+ variants, see README)\n");
    return 1;
}