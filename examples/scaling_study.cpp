/**
 * @file
 * Scenario: "will my application scale to 128 processors?" -- the
 * paper's core question, for any application in the registry.
 *
 * Usage: scaling_study [app] [size] [--jobs=N] [--sim-jobs=N]
 *                      [--trace=FILE] [--json=FILE] [--seed=N]
 *                      [--epoch-cycles=N]
 *   e.g. scaling_study barnes 16384
 *        scaling_study water-spatial 32768 --jobs=4
 *
 * The machine-size sweep runs on the parallel StudyRunner: --jobs=N
 * (or CCNUMA_JOBS; 0 = one worker per host core) simulates N grid
 * cells concurrently, with results aggregated in submission order and
 * the shared uniprocessor baseline simulated exactly once.
 *
 * --sim-jobs=N (CCNUMA_SIM_JOBS) additionally parallelizes *within*
 * each simulation on the node-sharded scout/replay engine — results
 * stay bit-identical to serial. --jobs stays the total host-thread
 * budget: the study pool runs jobs/sim-jobs cells at once.
 *
 * With --trace=FILE (or CCNUMA_TRACE=FILE) the largest run is traced:
 * FILE gets a Chrome-trace JSON (chrome://tracing / Perfetto) and
 * FILE.metrics.json the epoch time-series, latency histograms and
 * hot-line sharing report. With --json=FILE (or CCNUMA_JSON) the whole
 * grid -- speedups, efficiencies, breakdowns, engine timing -- is
 * dumped via core::MetricsSink.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "core/cli.hh"
#include "core/metrics.hh"
#include "core/report.hh"
#include "core/study_runner.hh"
#include "obs/export.hh"

using namespace ccnuma;

int
main(int argc, char** argv)
try {
    core::cli::Options opt = core::cli::parse(argc, argv);
    // --protocol / --dir-format apply to every machine in the grid.
    sim::MachineConfig proto = sim::MachineConfig::origin2000(2);
    core::cli::applyMachine(opt, proto);
    core::cli::warnUnknown(opt);
    const std::string app = opt.positionalOr(0, "water-spatial");
    const std::uint64_t size = opt.positionalOr(1, std::uint64_t{0});

    core::printHeader("scaling study: " + app);
    std::printf("problem size: %llu %s\n\n",
                static_cast<unsigned long long>(
                    size ? size : apps::basicSize(app)),
                apps::sizeUnit(app).c_str());

    const std::vector<int> sizes = {2, 8, 32, 64, 128};
    core::StudyPlan plan;
    for (const int P : sizes) {
        sim::MachineConfig cfg = sim::MachineConfig::origin2000(P);
        cfg.protocol = proto.protocol;
        cfg.dirFormat = proto.dirFormat;
        cfg.simJobs = proto.simJobs;
        // --seed / CCNUMA_SEED steers every randomized machine policy
        // (only the topology-mapping permutation today).
        cfg.mappingSeed = opt.seed;
        if (!opt.traceFile.empty() && P == sizes.back()) {
            // Trace the largest machine: that run is the one whose
            // scaling loss needs explaining.
            cfg.trace.events = true;
            cfg.trace.intervals = true;
            cfg.trace.sharing = true;
        }
        // --epoch-cycles / CCNUMA_EPOCH tunes the epoch resolution.
        if (opt.epochCycles)
            cfg.trace.epochCycles = opt.epochCycles;
        plan.add(app + " P=" + std::to_string(P), cfg,
                 [app, size] { return apps::makeApp(app, size); }, app);
    }

    core::StudyRunner runner({.jobs = opt.jobs,
                              .simJobs = opt.simJobs,
                              .progress = true});
    const core::StudyResult res = runner.run(plan);

    std::printf("%6s %10s %8s %8s   breakdown\n", "procs", "speedup",
                "effcy", "scales?");
    for (const core::RunOutcome& r : res.runs) {
        if (!r.ok) {
            std::printf("%6d   run failed: %s\n", r.nprocs,
                        r.error.c_str());
            continue;
        }
        const core::Measurement& m = r.m;
        const auto b = m.par.breakdown();
        std::printf("%6d %10.1f %7.1f%% %8s   busy %.0f%% mem %.0f%% "
                    "sync %.0f%%\n",
                    r.nprocs, m.speedup(), m.efficiency() * 100,
                    m.efficiency() >= core::kGoodEfficiency ? "yes"
                                                            : "no",
                    b.busy * 100, b.mem * 100, b.sync * 100);
    }
    std::printf("\n%zu runs in %.1fs host wall-clock with %d jobs\n",
                res.runs.size(), res.wallSeconds, res.jobs);

    if (!opt.jsonFile.empty()) {
        core::MetricsSink sink(opt.jsonFile);
        sink.setMachine(proto);
        res.emit(sink);
        if (sink.write())
            std::printf("wrote %s\n", opt.jsonFile.c_str());
    }

    const core::RunOutcome* largest =
        res.runs.empty() ? nullptr : &res.runs.back();
    if (!opt.traceFile.empty() && largest && largest->ok &&
        largest->m.par.trace) {
        const obs::Trace& t = *largest->m.par.trace;
        core::printHeader("observability: " + app + " at " +
                          std::to_string(largest->nprocs) + " procs");
        core::printLatencyHistograms(t);
        core::printHotLines(t, 10);
        if (obs::writeChromeTraceFile(opt.traceFile, t))
            std::printf("wrote %s (chrome://tracing / Perfetto)\n",
                        opt.traceFile.c_str());
        const std::string metrics = opt.traceFile + ".metrics.json";
        if (obs::writeMetricsJsonFile(metrics, t, &largest->m.par))
            std::printf("wrote %s\n", metrics.c_str());
    }

    const std::string restr = apps::restructuredVariant(app);
    if (!restr.empty()) {
        std::printf("\nHint: the paper's restructured variant of this "
                    "application is \"%s\";\ntry: scaling_study %s\n",
                    restr.c_str(), restr.c_str());
    }
    return res.failures() ? 1 : 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr, "known applications: ");
    for (const auto& n : ccnuma::apps::listApps())
        std::fprintf(stderr, "%s ", n.c_str());
    std::fprintf(stderr, "\n");
    return 1;
}
