/**
 * @file
 * Scenario: "will my application scale to 128 processors?" -- the
 * paper's core question, for any application in the registry.
 *
 * Usage: scaling_study [app] [size] [--trace=FILE]
 *   e.g. scaling_study barnes 16384
 *        scaling_study water-spatial 32768
 *
 * With --trace=FILE (or CCNUMA_TRACE=FILE) the largest run is traced:
 * FILE gets a Chrome-trace JSON (chrome://tracing / Perfetto) and
 * FILE.metrics.json the epoch time-series, latency histograms and
 * hot-line sharing report.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "core/report.hh"
#include "core/study.hh"
#include "obs/export.hh"

using namespace ccnuma;

int
main(int argc, char** argv)
try {
    std::string trace_file;
    if (const char* env = std::getenv("CCNUMA_TRACE"))
        trace_file = env;
    std::vector<std::string> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0)
            trace_file = argv[i] + 8;
        else
            pos.emplace_back(argv[i]);
    }
    const std::string app = !pos.empty() ? pos[0] : "water-spatial";
    const std::uint64_t size =
        pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10) : 0;

    core::printHeader("scaling study: " + app);
    std::printf("problem size: %llu %s\n\n",
                static_cast<unsigned long long>(
                    size ? size : apps::basicSize(app)),
                apps::sizeUnit(app).c_str());

    std::map<std::string, sim::Cycles> seq_cache;
    std::printf("%6s %10s %8s %8s   breakdown\n", "procs", "speedup",
                "effcy", "scales?");
    const std::vector<int> sizes = {2, 8, 32, 64, 128};
    for (const int P : sizes) {
        sim::MachineConfig cfg;
        cfg.numProcs = P;
        if (!trace_file.empty() && P == sizes.back()) {
            // Trace the largest machine: that run is the one whose
            // scaling loss needs explaining.
            cfg.trace.events = true;
            cfg.trace.intervals = true;
            cfg.trace.sharing = true;
        }
        const core::Measurement m = core::measure(
            cfg, [&] { return apps::makeApp(app, size); }, &seq_cache,
            app);
        const auto b = m.par.breakdown();
        std::printf("%6d %10.1f %7.1f%% %8s   busy %.0f%% mem %.0f%% "
                    "sync %.0f%%\n",
                    P, m.speedup(), m.efficiency() * 100,
                    m.efficiency() >= core::kGoodEfficiency ? "yes"
                                                            : "no",
                    b.busy * 100, b.mem * 100, b.sync * 100);
        std::fflush(stdout);
        if (!trace_file.empty() && P == sizes.back() && m.par.trace) {
            const obs::Trace& t = *m.par.trace;
            core::printHeader("observability: " + app + " at " +
                              std::to_string(P) + " procs");
            core::printLatencyHistograms(t);
            core::printHotLines(t, 10);
            if (obs::writeChromeTraceFile(trace_file, t))
                std::printf("wrote %s (chrome://tracing / Perfetto)\n",
                            trace_file.c_str());
            const std::string metrics = trace_file + ".metrics.json";
            if (obs::writeMetricsJsonFile(metrics, t, &m.par))
                std::printf("wrote %s\n", metrics.c_str());
        }
    }

    const std::string restr = apps::restructuredVariant(app);
    if (!restr.empty()) {
        std::printf("\nHint: the paper's restructured variant of this "
                    "application is \"%s\";\ntry: scaling_study %s\n",
                    restr.c_str(), restr.c_str());
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr, "known applications: ");
    for (const auto& n : ccnuma::apps::originalApps())
        std::fprintf(stderr, "%s ", n.c_str());
    std::fprintf(stderr, "(+ variants, see README)\n");
    return 1;
}