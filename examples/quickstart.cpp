/**
 * @file
 * Quickstart: simulate a 64-processor Origin2000-class machine running
 * the SPLASH-2 FFT, and report speedup and where the time goes.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Observability: pass --trace=fft.trace.json (or set CCNUMA_TRACE) to
 * also write a Chrome-trace JSON (open in chrome://tracing / Perfetto)
 * plus fft.trace.json.metrics.json with epoch time-series, latency
 * histograms and the hot-line sharing report.
 */

#include <cstdio>
#include <string>

#include "apps/registry.hh"
#include "core/cli.hh"
#include "core/report.hh"
#include "core/study.hh"
#include "obs/export.hh"

using namespace ccnuma;

int
main(int argc, char** argv)
{
    // 1. Configure a machine: 64 processors, 2 per node, calibrated to
    //    the SGI Origin2000's latencies (Table 1 of the paper).
    sim::MachineConfig cfg = sim::MachineConfig::origin2000(64);
    core::cli::Options opt = core::cli::parse(argc, argv);
    // --protocol / --dir-format (CCNUMA_PROTOCOL / CCNUMA_DIR) swap
    // the coherence protocol and directory sharer format;
    // --sim-jobs=N (CCNUMA_SIM_JOBS) runs the simulation itself on N
    // host threads (0 = one per core) with bit-identical results.
    core::cli::applyMachine(opt, cfg);
    core::cli::warnUnknown(opt);
    cfg.mappingSeed = opt.seed; // --seed / CCNUMA_SEED
    const std::string trace_file = opt.traceFile;
    if (!trace_file.empty()) {
        cfg.trace.events = true;
        cfg.trace.intervals = true;
        cfg.trace.sharing = true;
    }
    // --epoch-cycles / CCNUMA_EPOCH tunes the epoch-series resolution.
    if (opt.epochCycles)
        cfg.trace.epochCycles = opt.epochCycles;

    // 2. Pick an application at its basic problem size (2^20 points).
    //    makeApp knows every app and variant in the study.
    core::printHeader("quickstart: FFT (2^20 points) on 64 processors");

    // 3. Measure: runs the same program on a 1-processor machine for
    //    the baseline, then on the parallel machine.
    core::SeqBaselineCache seq_cache;
    const core::Measurement m = core::measure(
        cfg, [] { return apps::makeApp("fft"); }, &seq_cache, "fft");

    std::printf("sequential time   %8.1f ms (simulated)\n",
                m.seqTime * cfg.nsPerCycle() / 1e6);
    std::printf("parallel time     %8.1f ms (simulated)\n",
                m.parTime * cfg.nsPerCycle() / 1e6);
    std::printf("speedup           %8.1f on %d processors\n",
                m.speedup(), cfg.numProcs);
    std::printf("parallel effcy    %8.1f %% (the paper's bar: 60%%)\n",
                m.efficiency() * 100);

    // 4. Where does the time go?
    core::printBreakdown("execution time breakdown", m.par.breakdown());
    core::printCounters("event counters (all procs)", m.par.totals());

    // 4b. With tracing on: export the run and summarize it.
    if (!trace_file.empty() && m.par.trace) {
        const obs::Trace& t = *m.par.trace;
        core::printLatencyHistograms(t);
        core::printHeader("hottest coherence lines");
        core::printHotLines(t, 10);
        if (obs::writeChromeTraceFile(trace_file, t))
            std::printf("\nwrote %s (open in chrome://tracing or "
                        "https://ui.perfetto.dev)\n",
                        trace_file.c_str());
        const std::string metrics = trace_file + ".metrics.json";
        if (obs::writeMetricsJsonFile(metrics, t, &m.par))
            std::printf("wrote %s (epoch time-series + histograms + "
                        "hot lines)\n",
                        metrics.c_str());
    } else if (!trace_file.empty()) {
        std::printf("\n(tracing requested but compiled out; rebuild "
                    "with -DCCNUMA_TRACING=ON)\n");
    }

    // 5. Same again with software prefetch in the transpose phases.
    const core::Measurement pf = core::measure(
        cfg, [] { return apps::makeApp("fft-prefetch"); }, &seq_cache,
        "fft");
    std::printf("\nwith prefetch     %8.1f ms  (%+.1f%%)\n",
                pf.parTime * cfg.nsPerCycle() / 1e6,
                (static_cast<double>(m.parTime) - pf.parTime) /
                    m.parTime * 100);
    return 0;
}
