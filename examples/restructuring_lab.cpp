/**
 * @file
 * Scenario: evaluate an algorithmic restructuring before committing to
 * it -- compare an original application against its restructured
 * variant across machine sizes, per Section 5 of the paper.
 *
 * Usage: restructuring_lab [app] [size]
 *   e.g. restructuring_lab barnes
 *        restructuring_lab water-nsq 8192
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/registry.hh"
#include "core/report.hh"
#include "core/study.hh"

using namespace ccnuma;

int
main(int argc, char** argv)
try {
    const std::string app = argc > 1 ? argv[1] : "barnes";
    const std::uint64_t size =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;
    const std::string restr = apps::restructuredVariant(app);
    if (restr.empty()) {
        std::printf("no restructured variant registered for %s\n",
                    app.c_str());
        return 1;
    }

    core::printHeader("restructuring lab: " + app + " vs " + restr);
    core::SeqBaselineCache seq_cache;
    for (const int P : {32, 128}) {
        const sim::MachineConfig cfg = sim::MachineConfig::origin2000(P);
        // Both variants are measured against the original program's
        // sequential time, as in the paper.
        const auto orig = core::measure(
            cfg, [&] { return apps::makeApp(app, size); }, &seq_cache,
            app);
        const auto rest = core::measure(
            cfg, [&] { return apps::makeApp(restr, size); }, &seq_cache,
            app);
        std::printf("\nP=%d\n", P);
        std::printf("  %-26s speedup %6.1f  eff %5.1f%%\n", app.c_str(),
                    orig.speedup(), orig.efficiency() * 100);
        core::printBreakdown("    " + app, orig.par.breakdown());
        std::printf("  %-26s speedup %6.1f  eff %5.1f%%\n",
                    restr.c_str(), rest.speedup(),
                    rest.efficiency() * 100);
        core::printBreakdown("    " + restr, rest.par.breakdown());
        const double gain =
            (static_cast<double>(orig.parTime) - rest.parTime) /
            orig.parTime * 100;
        std::printf("  restructuring changes execution time by %+.1f%%"
                    " at P=%d\n",
                    -gain, P);
        std::fflush(stdout);
    }
    std::printf("\nPaper guideline: restructurings that separate out "
                "partitions and reduce\ncommunication may lose at "
                "moderate scale but win at large scale.\n");
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr, "known applications: ");
    for (const auto& n : ccnuma::apps::originalApps())
        std::fprintf(stderr, "%s ", n.c_str());
    std::fprintf(stderr, "(+ variants, see README)\n");
    return 1;
}