/**
 * @file
 * Command-line client for ccnuma_serve: builds schema-v1 requests,
 * sends them over TCP or a Unix socket, and prints each response line.
 *
 *   ccnuma_client [--host=A] [--port=N] [--unix=PATH] <actions...>
 *
 * Actions (any mix; executed in order on one connection):
 *   --ping                 liveness probe
 *   --study=APP            run APP; combine with --size=N and
 *                          --procs=1,2,4 (defaults: basic size, 4)
 *   --trace-file=PATH      upload a ccnuma-trace v1 file and run it
 *   --obs                  request hot-line artifacts (study/trace)
 *   --no-baseline          study without the uniprocessor baseline
 *   --raw=JSON             send a raw request line verbatim
 *   --shutdown             ask the server to drain and exit
 *
 * Exit status: 0 iff every response came back ok:true.
 * See serve/wire.hh for the protocol.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "serve/net.hh"

namespace {

using namespace ccnuma;

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    core::cli::Options opt = core::cli::parse(argc, argv);

    std::string host = "127.0.0.1";
    std::string unixPath;
    std::uint64_t port = 0;
    std::string value;
    if (opt.takeFlag("host", value))
        host = value;
    if (opt.takeFlag("unix", value))
        unixPath = value;
    if (opt.takeFlag("port", value) &&
        !core::cli::parseU64(value, port)) {
        std::fprintf(stderr, "ccnuma_client: bad --port '%s'\n",
                     value.c_str());
        return 2;
    }

    // Options shared by the study/trace request builders.
    std::string size = "0";
    std::string procs = "4";
    if (opt.takeFlag("size", value))
        size = value;
    if (opt.takeFlag("procs", value))
        procs = value;
    const bool obs = opt.takeSwitch("obs");
    const bool noBaseline = opt.takeSwitch("no-baseline");

    // Assemble request lines in flag order.
    std::vector<std::string> requests;
    int id = 0;
    const auto nextId = [&] { return std::to_string(++id); };
    while (opt.takeSwitch("ping"))
        requests.push_back("{\"id\":\"" + nextId() +
                           "\",\"type\":\"ping\"}");
    while (opt.takeFlag("study", value)) {
        std::string req = "{\"id\":\"" + nextId() +
                          "\",\"type\":\"study\",\"app\":\"" +
                          jsonEscape(value) + "\",\"size\":" + size +
                          ",\"procs\":[" + procs + "]";
        if (noBaseline)
            req += ",\"baseline\":false";
        if (obs)
            req += ",\"obs\":true";
        requests.push_back(req + "}");
    }
    while (opt.takeFlag("trace-file", value)) {
        std::ifstream f(value);
        if (!f) {
            std::fprintf(stderr, "ccnuma_client: cannot read %s\n",
                         value.c_str());
            return 2;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string req = "{\"id\":\"" + nextId() +
                          "\",\"type\":\"trace\",\"trace\":\"" +
                          jsonEscape(text.str()) + "\"";
        if (obs)
            req += ",\"obs\":true";
        requests.push_back(req + "}");
    }
    while (opt.takeFlag("raw", value))
        requests.push_back(value);
    const bool shutdown = opt.takeSwitch("shutdown");
    if (shutdown)
        requests.push_back("{\"id\":\"" + nextId() +
                           "\",\"type\":\"shutdown\"}");
    core::cli::warnUnknown(opt);
    if (requests.empty()) {
        std::fprintf(stderr,
                     "ccnuma_client: nothing to do (try --ping)\n");
        return 2;
    }

    serve::Fd conn;
    try {
        conn = unixPath.empty()
                   ? serve::connectTcp(host, static_cast<int>(port))
                   : serve::connectUnix(unixPath);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ccnuma_client: %s\n", e.what());
        return 1;
    }

    bool allOk = true;
    serve::LineReader reader(conn.get(), 64u << 20);
    for (const std::string& req : requests) {
        if (!serve::writeAll(conn.get(), req + "\n")) {
            std::fprintf(stderr, "ccnuma_client: write failed\n");
            return 1;
        }
        std::string resp;
        if (reader.next(resp) != serve::ReadStatus::Line) {
            std::fprintf(stderr,
                         "ccnuma_client: connection closed early\n");
            return 1;
        }
        std::printf("%s\n", resp.c_str());
        if (resp.find("\"ok\":true") == std::string::npos)
            allOk = false;
    }
    return allOk ? 0 : 1;
}
